package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"simjoin"
	"simjoin/internal/cluster"
	"simjoin/internal/rclient"
)

// newBudgetServer boots a worker with an admission budget.
func newBudgetServer(t *testing.T, maxPairs int64) *httptest.Server {
	t.Helper()
	srv := newServer()
	srv.maxPairs = maxPairs
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts
}

// densePoints is a workload where nearly every pair joins at a generous
// eps: one tight Gaussian blob.
func densePoints(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{0.5 + rng.NormFloat64()*0.01, 0.5 + rng.NormFloat64()*0.01}
	}
	return pts
}

func exactSelfJoinTotal(t *testing.T, pts [][]float64, eps float64) int64 {
	t.Helper()
	res, err := simjoin.SelfJoin(simjoin.FromPoints(pts), simjoin.Options{Eps: eps, Algorithm: simjoin.AlgorithmBrute})
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats.Results
}

// TestWorkerAdmissionControl: a self-join whose estimated result size
// exceeds -max-pairs must be refused with 429 (estimate in the body),
// the same request with "degrade" must return the exact count without
// pairs, and an under-budget request must run normally.
func TestWorkerAdmissionControl(t *testing.T) {
	const budget = 100
	ts := newBudgetServer(t, budget)
	pts := densePoints(60, 1) // all pairs join at eps 1: 60·59/2 = 1770 ≫ budget
	putPoints(t, ts.URL, "dense", pts)

	// Over budget, no degrade: 429 carrying the estimate.
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/dense/selfjoin", map[string]any{"eps": 1.0})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget status = %d, want 429 (%v)", resp.StatusCode, body)
	}
	est, ok := body["estimated_pairs"].(float64)
	if !ok || est <= budget {
		t.Fatalf("429 body estimated_pairs = %v, want > %d", body["estimated_pairs"], budget)
	}
	if mp, ok := body["max_pairs"].(float64); !ok || int64(mp) != budget {
		t.Fatalf("429 body max_pairs = %v, want %d", body["max_pairs"], budget)
	}

	// Same request with degrade: counting-only run, exact total, no pairs.
	want := exactSelfJoinTotal(t, pts, 1.0)
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/datasets/dense/selfjoin", map[string]any{"eps": 1.0, "degrade": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded status = %d (%v)", resp.StatusCode, body)
	}
	if body["degraded"] != true {
		t.Fatalf("degraded flag missing: %v", body)
	}
	if got := int64(body["total"].(float64)); got != want {
		t.Fatalf("degraded total = %d, want exact %d", got, want)
	}
	if n := len(body["pairs"].([]any)); n != 0 {
		t.Fatalf("degraded run returned %d pairs, want none", n)
	}
	if got := int64(body["estimated_pairs"].(float64)); got <= budget {
		t.Fatalf("degraded estimated_pairs = %d, want > %d", got, budget)
	}

	// Under budget: the identical route with a tiny eps runs normally
	// and still reports the (sketch-served) estimate.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/datasets/dense/selfjoin", map[string]any{"eps": 1e-9})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("under-budget status = %d (%v)", resp.StatusCode, body)
	}
	if body["degraded"] == true {
		t.Fatal("under-budget request was degraded")
	}
	if _, ok := body["estimated_pairs"].(float64); !ok {
		t.Fatalf("under-budget response carries no estimated_pairs: %v", body)
	}
}

// TestWorkerTwoSetAdmission: the /join route prices against both
// sketches and enforces the same budget.
func TestWorkerTwoSetAdmission(t *testing.T) {
	ts := newBudgetServer(t, 50)
	a := densePoints(40, 2)
	b := densePoints(40, 3)
	putPoints(t, ts.URL, "a", a)
	putPoints(t, ts.URL, "b", b)

	resp, body := doJSON(t, http.MethodPost, ts.URL+"/join", map[string]any{"a": "a", "b": "b", "eps": 1.0})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget two-set status = %d (%v)", resp.StatusCode, body)
	}

	resp, body = doJSON(t, http.MethodPost, ts.URL+"/join", map[string]any{"a": "a", "b": "b", "eps": 1.0, "degrade": true})
	if resp.StatusCode != http.StatusOK || body["degraded"] != true {
		t.Fatalf("degraded two-set: %d %v", resp.StatusCode, body)
	}
	if got := int64(body["total"].(float64)); got != 40*40 {
		t.Fatalf("degraded two-set total = %d, want %d", got, 40*40)
	}
}

// TestWorkerEstimateEndpoint: GET /datasets/{name}?eps= must answer
// with the sketch-served prediction and the sketch's metadata.
func TestWorkerEstimateEndpoint(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	pts := densePoints(50, 4)
	putPoints(t, ts.URL, "d", pts)

	resp, body := doJSON(t, http.MethodGet, ts.URL+"/datasets/d?eps=1.0", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%v)", resp.StatusCode, body)
	}
	sk, ok := body["sketch"].(map[string]any)
	if !ok || sk["points"].(float64) != 50 {
		t.Fatalf("sketch block = %v", body["sketch"])
	}
	est, ok := body["estimate"].(map[string]any)
	if !ok {
		t.Fatalf("no estimate block: %v", body)
	}
	if est["sketched"] != true {
		t.Fatalf("estimate not sketch-served: %v", est)
	}
	// 50 tightly clustered points at eps 1: everything joins, and below
	// the reservoir size the sketch is exact.
	if got := int64(est["pairs"].(float64)); got != 50*49/2 {
		t.Fatalf("estimated pairs = %d, want %d", got, 50*49/2)
	}

	// Bad eps is a 400, not a silent omission.
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/datasets/d?eps=-1", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("eps=-1 status = %d, want 400", resp.StatusCode)
	}
}

// startBudgetCluster is startCluster with an admission budget on the
// coordinator (workers stay unlimited, so shard sub-queries always run).
func startBudgetCluster(t *testing.T, n int, margin float64, maxPairs int64) *httptest.Server {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		w := httptest.NewServer(newServer().handler())
		urls[i] = w.URL
		t.Cleanup(w.Close)
	}
	rc := &rclient.Client{
		MaxRetries:     2,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       10 * time.Millisecond,
		AttemptTimeout: 10 * time.Second,
		RetryPOST:      true,
	}
	cs := newCoordServer(cluster.New(urls, margin, rc))
	cs.maxPairs = maxPairs
	coord := httptest.NewServer(cs.handler())
	t.Cleanup(coord.Close)
	return coord
}

// TestCoordinatorAdmissionControl: the coordinator prices a distributed
// self-join by scattering per-shard estimates, refuses over-budget
// queries with 429, degrades on request to an exact merged count, and
// passes under-budget queries through untouched.
func TestCoordinatorAdmissionControl(t *testing.T) {
	const budget = 100
	coord := startBudgetCluster(t, 3, 1.0, budget)
	pts := clusterPoints(120, 2, 7) // uniform in [0,1]²; eps 0.9 joins nearly all pairs
	putPoints(t, coord.URL, "g", pts)

	resp, body := doJSON(t, http.MethodPost, coord.URL+"/datasets/g/selfjoin", map[string]any{"eps": 0.9})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget status = %d (%v)", resp.StatusCode, body)
	}
	if est, ok := body["estimated_pairs"].(float64); !ok || est <= budget {
		t.Fatalf("429 body estimated_pairs = %v, want > %d", body["estimated_pairs"], budget)
	}

	want := exactSelfJoinTotal(t, pts, 0.9)
	resp, body = doJSON(t, http.MethodPost, coord.URL+"/datasets/g/selfjoin", map[string]any{"eps": 0.9, "degrade": true})
	if resp.StatusCode != http.StatusOK || body["degraded"] != true {
		t.Fatalf("degraded: %d %v", resp.StatusCode, body)
	}
	if got := int64(body["total"].(float64)); got != want {
		t.Fatalf("degraded total = %d, want exact %d", got, want)
	}

	resp, body = doJSON(t, http.MethodPost, coord.URL+"/datasets/g/selfjoin", map[string]any{"eps": 0.001})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("under-budget status = %d (%v)", resp.StatusCode, body)
	}
	if body["degraded"] == true {
		t.Fatal("under-budget request was degraded")
	}
}

// TestCoordinatorEstimateEndpoint: GET /datasets/{name}?eps= through
// the coordinator gathers one estimate per shard.
func TestCoordinatorEstimateEndpoint(t *testing.T) {
	coord, _ := startCluster(t, 3, 1.0)
	pts := clusterPoints(90, 2, 9)
	putPoints(t, coord.URL, "e", pts)

	resp, body := doJSON(t, http.MethodGet, coord.URL+"/datasets/e?eps=0.5", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%v)", resp.StatusCode, body)
	}
	est, ok := body["estimate"].(map[string]any)
	if !ok {
		t.Fatalf("no estimate block: %v", body)
	}
	if est["pairs"].(float64) <= 0 {
		t.Fatalf("summed estimate = %v, want > 0", est["pairs"])
	}
	shards, ok := est["shard_estimates"].([]any)
	if !ok || len(shards) == 0 {
		t.Fatalf("shard_estimates = %v", est["shard_estimates"])
	}
	for _, raw := range shards {
		sh := raw.(map[string]any)
		if sh["sketched"] != true {
			t.Fatalf("shard estimate not sketch-served: %v", sh)
		}
	}
}
