package main

import (
	"net/http"
	"strconv"
	"time"

	"simjoin"
	"simjoin/internal/obsv/querylog"
	"simjoin/internal/obsv/trace"
)

// recordQuery journals one finished query and charges the query metrics
// off the same classification the journal stored: the slow counter when
// the journal marked it slow, and the per-algorithm latency histogram
// always ("none" when no engine ran, e.g. a rejected query).
func recordQuery(l *querylog.Log, m *metrics, rec querylog.Record) querylog.Record {
	rec = l.Add(rec)
	if rec.Slow {
		m.querySlow.Inc()
	}
	algo := rec.Algorithm
	if algo == "" {
		algo = "none"
	}
	m.queryLatency.With(algo).Observe(float64(rec.ElapsedNS) / 1e9)
	return rec
}

// queriesHandler serves GET /debug/queries: the journal newest first
// under running totals, narrowed by ?slow=1 (slow-classified records
// only), ?dataset=<name> (either side of a join) and ?limit=N. Like the
// trace routes it sits outside the instrument middleware — scraping the
// journal must not journal itself.
func queriesHandler(l *querylog.Log) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		f := querylog.Filter{Dataset: r.URL.Query().Get("dataset")}
		if v := r.URL.Query().Get("slow"); v == "1" || v == "true" {
			f.SlowOnly = true
		}
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				httpError(w, http.StatusBadRequest, "limit must be a non-negative integer, got %q", v)
				return
			}
			f.Limit = n
		}
		total, slow := l.Totals()
		q := l.Snapshot(f)
		if q == nil {
			q = []querylog.Record{}
		}
		writeJSON(w, map[string]any{"total": total, "slow": slow, "queries": q})
	}
}

// traceIDOf returns the request's trace ID when the instrument
// middleware opened a span for it, "" otherwise — the key that links a
// journal record to /debug/traces/{id}.
func traceIDOf(r *http.Request) string {
	if sp := trace.FromContext(r.Context()); sp != nil {
		return sp.TraceID().String()
	}
	return ""
}

// recordFailure journals a query that never produced run stats — a
// rejection, a degraded run that errored, a validation failure — with
// wall time measured from start.
func recordFailure(l *querylog.Log, m *metrics, rec querylog.Record, start time.Time, o querylog.Outcome, err error) {
	rec.Outcome = o
	if err != nil {
		rec.Error = err.Error()
	}
	rec.ElapsedNS = int64(time.Since(start))
	recordQuery(l, m, rec)
}

// fillFromRun copies a finished run's counters into rec: the resolved
// engine, work counters and phase timings from the detailed stats, the
// result size from the run summary. A library-side estimate (streaming
// runs under AlgorithmAuto fill one) backfills a record that carried
// none of its own.
func fillFromRun(rec *querylog.Record, js simjoin.JoinStats, results int64) {
	rec.Algorithm = string(js.Algorithm)
	rec.ActualPairs = results
	rec.DistComps = js.DistComps
	rec.Candidates = js.Candidates
	rec.BuildNS = int64(js.BuildTime)
	rec.ProbeNS = int64(js.ProbeTime)
	rec.ElapsedNS = int64(js.Elapsed)
	if rec.EstimatedPairs < 0 && js.EstimatedPairs >= 0 {
		rec.EstimatedPairs = js.EstimatedPairs
	}
}
