package main

import (
	"net/http"
	"strconv"
	"time"

	"simjoin"
)

// explainEps parses the mandatory eps query parameter, writing the HTTP
// error itself when it is missing or non-positive.
func explainEps(w http.ResponseWriter, r *http.Request) (float64, bool) {
	eps, err := strconv.ParseFloat(r.URL.Query().Get("eps"), 64)
	if err != nil || !(eps > 0) {
		httpError(w, http.StatusBadRequest, "eps must be a positive number, got %q", r.URL.Query().Get("eps"))
		return 0, false
	}
	return eps, true
}

// handleExplain serves GET /datasets/{name}/explain?eps=…[&metric=…]
// [&algorithm=…] on a worker: the library's EXPLAIN — the engine that
// would run and the size prediction — without executing the join.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	e, ok := s.get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no dataset %q", r.PathValue("name"))
		return
	}
	eps, ok := explainEps(w, r)
	if !ok {
		return
	}
	opt := simjoin.Options{Eps: eps, Algorithm: simjoin.Algorithm(r.URL.Query().Get("algorithm"))}
	if ms := r.URL.Query().Get("metric"); ms != "" {
		m, err := simjoin.ParseMetric(ms)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		opt.Metric = m
	}
	ex, err := simjoin.Explain(e.dataset(), opt)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.m.estimateRequests.With(estimateSource(ex.Plan.Sketched)).Inc()
	writeJSON(w, explainJSON(r.PathValue("name"), ex))
}

// handleExplain serves the coordinator's GET /datasets/{name}/explain
// ?eps=…[&metric=…]: the distributed EXPLAIN — one estimate scatter over
// the fleet, answered as the summed prediction plus each shard's local
// plan (predicted size, selectivity, sketch provenance and the engine
// its planner would pick).
func (s *coordServer) handleExplain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	eps, ok := explainEps(w, r)
	if !ok {
		return
	}
	metric := r.URL.Query().Get("metric")
	defer s.observeFanout("estimate", time.Now())
	est, err := s.c.EstimateSelfJoin(r.Context(), name, eps, metric)
	if err != nil {
		coordError(w, err)
		return
	}
	if metric == "" {
		metric = "L2"
	}
	source := "sample"
	for _, sh := range est.Shards {
		if sh.Sketched {
			source = "sketch"
			break
		}
	}
	s.m.estimateRequests.With(source).Inc()
	writeJSON(w, map[string]any{
		"dataset":         name,
		"eps":             eps,
		"metric":          metric,
		"estimated_pairs": est.Pairs,
		"shards":          len(est.Shards),
		"partial":         est.Partial,
		"shard_estimates": est.Shards,
	})
}

// explainJSON is the HTTP shape of an Explanation.
func explainJSON(name string, ex simjoin.Explanation) map[string]any {
	return map[string]any{
		"dataset":   name,
		"eps":       ex.Eps,
		"metric":    ex.Metric.String(),
		"requested": string(ex.Requested),
		"algorithm": string(ex.Algorithm),
		"plan": map[string]any{
			"algorithm":       string(ex.Plan.Algorithm),
			"estimated_pairs": ex.Plan.EstimatedPairs,
			"selectivity":     ex.Plan.Selectivity,
			"sketched":        ex.Plan.Sketched,
		},
	}
}
