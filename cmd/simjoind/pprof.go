package main

import (
	"net/http"
	"net/http/pprof"
)

// mountPprof exposes the net/http/pprof handlers on mux under
// /debug/pprof/, for servers started with -debug. The explicit wiring
// (rather than the package's DefaultServeMux side effect) keeps profiling
// off every server that did not opt in.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
