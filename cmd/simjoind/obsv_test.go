package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"simjoin/internal/cluster"
	"simjoin/internal/obsv/querylog"
	"simjoin/internal/obsv/trace"
	"simjoin/internal/rclient"
)

// queriesPage is the GET /debug/queries response shape.
type queriesPage struct {
	Total   int64             `json:"total"`
	Slow    int64             `json:"slow"`
	Queries []querylog.Record `json:"queries"`
}

// getQueries fetches a daemon's query journal, with optional filters
// ("?slow=1", "?dataset=a&limit=2", …).
func getQueries(t *testing.T, base, filters string) queriesPage {
	t.Helper()
	resp, err := http.Get(base + "/debug/queries" + filters)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/queries%s: %d", filters, resp.StatusCode)
	}
	var out queriesPage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// getBody fetches a URL and returns its body as a string, failing the
// test on a non-2xx status.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, sb.String())
	}
	return sb.String()
}

func TestWorkerQueryJournal(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {0.05, 0}, {0.9, 0.9}})
	putPoints(t, ts.URL, "b", [][]float64{{1, 1}, {2, 2}})

	resp, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/selfjoin", map[string]any{"eps": 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selfjoin: %d %v", resp.StatusCode, body)
	}
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/datasets/b/knn", map[string]any{"point": []float64{0, 0}, "k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("knn: %d", resp.StatusCode)
	}

	page := getQueries(t, ts.URL, "")
	if page.Total != 2 {
		t.Fatalf("journal total = %d, want 2", page.Total)
	}
	// Newest first: the KNN query leads.
	if page.Queries[0].Kind != "knn" || page.Queries[1].Kind != "selfjoin" {
		t.Fatalf("journal order = %q, %q; want knn, selfjoin", page.Queries[0].Kind, page.Queries[1].Kind)
	}
	sj := page.Queries[1]
	if sj.Dataset != "a" || sj.Outcome != querylog.OutcomeOK {
		t.Fatalf("selfjoin record = %+v", sj)
	}
	if sj.ActualPairs != 1 {
		t.Errorf("selfjoin actual_pairs = %d, want 1", sj.ActualPairs)
	}
	if sj.EstimatedPairs < 0 {
		t.Errorf("selfjoin record missing estimate (sketches are on): %+v", sj)
	}
	if sj.Algorithm == "" || sj.TraceID == "" || sj.ElapsedNS <= 0 {
		t.Errorf("selfjoin record missing algorithm/trace/elapsed: %+v", sj)
	}
	// The record's trace ID resolves in the trace ring.
	found := false
	for _, td := range getTraces(t, ts.URL) {
		if td.TraceID == sj.TraceID {
			found = true
		}
	}
	if !found {
		t.Errorf("journal trace_id %s not in /debug/traces", sj.TraceID)
	}

	// Filters: by dataset, and by slow (nothing here runs 250ms).
	if got := getQueries(t, ts.URL, "?dataset=a"); len(got.Queries) != 1 || got.Queries[0].Kind != "selfjoin" {
		t.Errorf("?dataset=a returned %+v", got.Queries)
	}
	if got := getQueries(t, ts.URL, "?slow=1"); len(got.Queries) != 0 {
		t.Errorf("?slow=1 returned %+v", got.Queries)
	}
	if got := getQueries(t, ts.URL, "?limit=1"); len(got.Queries) != 1 {
		t.Errorf("?limit=1 returned %d records", len(got.Queries))
	}

	// The scrapeable shadow: the per-algorithm latency histogram saw the
	// join, the slow counter stayed at zero.
	scrape := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(scrape, `simjoin_query_duration_seconds_count{algorithm="`) {
		t.Error("scrape missing simjoin_query_duration_seconds series")
	}
	if !strings.Contains(scrape, "simjoin_query_slow_total 0") {
		t.Error("scrape missing simjoin_query_slow_total 0")
	}
}

func TestWorkerJournalRecordsRejection(t *testing.T) {
	srv := newServer()
	srv.maxPairs = 1
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	putPoints(t, ts.URL, "a", clusterPoints(200, 2, 3))

	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/selfjoin", map[string]any{"eps": 0.5})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	page := getQueries(t, ts.URL, "")
	if len(page.Queries) != 1 || page.Queries[0].Outcome != querylog.OutcomeRejected {
		t.Fatalf("journal after rejection = %+v", page.Queries)
	}
	if page.Queries[0].EstimatedPairs <= 1 {
		t.Errorf("rejected record estimate = %d, want > budget", page.Queries[0].EstimatedPairs)
	}
}

func TestWorkerExplainEndpoint(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", clusterPoints(100, 2, 5))

	resp, body := doJSON(t, http.MethodGet, ts.URL+"/datasets/a/explain?eps=0.2&algorithm=auto", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: %d %v", resp.StatusCode, body)
	}
	if body["dataset"] != "a" || body["metric"] != "L2" {
		t.Errorf("explain body = %v", body)
	}
	algo, _ := body["algorithm"].(string)
	if algo == "" || algo == "auto" {
		t.Errorf("explain left algorithm unresolved: %v", body)
	}
	plan, ok := body["plan"].(map[string]any)
	if !ok {
		t.Fatalf("explain missing plan: %v", body)
	}
	if est, _ := plan["estimated_pairs"].(float64); est < 0 {
		t.Errorf("explain plan unpriced: %v", plan)
	}
	if sk, _ := plan["sketched"].(bool); !sk {
		t.Errorf("sketched dataset explained without sketch: %v", plan)
	}

	// Validation: missing eps and bad algorithm are 400s, missing dataset 404.
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/datasets/a/explain", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("explain without eps: %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/datasets/a/explain?eps=0.2&algorithm=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("explain with bogus algorithm: %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/datasets/zzz/explain?eps=0.2", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("explain on missing dataset: %d, want 404", resp.StatusCode)
	}
}

func TestHealthzCarriesBuildInfo(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	build, ok := body["build"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing build block: %v", body)
	}
	if gv, _ := build["go"].(string); !strings.HasPrefix(gv, "go") {
		t.Errorf("build.go = %q, want a Go version", gv)
	}
}

func TestTracesFilters(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {1, 1}})
	for i := 0; i < 3; i++ {
		doJSON(t, http.MethodGet, ts.URL+"/datasets", nil)
	}

	all := getTraces(t, ts.URL)
	if len(all) < 3 {
		t.Fatalf("retained %d traces, want >= 3", len(all))
	}
	// ?limit caps the newest-first answer.
	resp, err := http.Get(ts.URL + "/debug/traces?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	var limited []trace.TraceData
	json.NewDecoder(resp.Body).Decode(&limited)
	resp.Body.Close()
	if len(limited) != 2 || limited[0].TraceID != all[0].TraceID {
		t.Fatalf("?limit=2 returned %d traces (first %s, want %s)", len(limited), limited[0].TraceID, all[0].TraceID)
	}
	// ?trace filters to one ID.
	want := all[1].TraceID
	resp, err = http.Get(ts.URL + "/debug/traces?trace=" + want)
	if err != nil {
		t.Fatal(err)
	}
	var filtered []trace.TraceData
	json.NewDecoder(resp.Body).Decode(&filtered)
	resp.Body.Close()
	if len(filtered) == 0 {
		t.Fatalf("?trace=%s returned nothing", want)
	}
	for _, td := range filtered {
		if td.TraceID != want {
			t.Fatalf("?trace=%s returned trace %s", want, td.TraceID)
		}
	}
	// /debug/traces/{id} merges the ID's spans into one TraceData.
	resp, err = http.Get(ts.URL + "/debug/traces/" + want)
	if err != nil {
		t.Fatal(err)
	}
	var merged trace.TraceData
	json.NewDecoder(resp.Body).Decode(&merged)
	resp.Body.Close()
	if merged.TraceID != want || len(merged.Spans) == 0 {
		t.Fatalf("/debug/traces/%s = %+v", want, merged)
	}
	// Unknown ID is a 404; bad limit a 400.
	if resp, _ := http.Get(ts.URL + "/debug/traces/deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id: %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/debug/traces?limit=x"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit: %d, want 400", resp.StatusCode)
	}
}

func TestTraceRingFlagRejectsNonPositive(t *testing.T) {
	if got := run([]string{"-trace-ring", "0", "-addr", "127.0.0.1:0"}); got != 2 {
		t.Fatalf("run(-trace-ring 0) = %d, want 2", got)
	}
	if got := run([]string{"-trace-ring", "-5", "-addr", "127.0.0.1:0"}); got != 2 {
		t.Fatalf("run(-trace-ring -5) = %d, want 2", got)
	}
}

// runtimeSeries are the health-telemetry series every daemon registry
// must expose.
var runtimeSeries = []string{
	"simjoind_go_goroutines ",
	"simjoind_go_heap_bytes ",
	"simjoind_go_gc_pause_seconds_bucket",
	"simjoind_go_sched_latency_seconds_bucket",
	"simjoind_go_goroutine_growth ",
}

// TestClusterObservabilityE2E is the acceptance test: one distributed
// self-join over a real 3-worker cluster must leave (a) one stitched
// trace on the coordinator containing spans from the coordinator and
// all three workers, (b) journal records on both tiers sharing that
// trace ID with consistent estimate and actual counts, and (c) runtime
// health series on every /metrics.
func TestClusterObservabilityE2E(t *testing.T) {
	const n = 3
	urls := make([]string, n)
	workers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		workers[i] = httptest.NewServer(newServer().handler())
		urls[i] = workers[i].URL
		t.Cleanup(workers[i].Close)
	}
	rc := &rclient.Client{
		MaxRetries:     2,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       10 * time.Millisecond,
		AttemptTimeout: 10 * time.Second,
		RetryPOST:      true,
	}
	cs := newCoordServer(cluster.New(urls, 0.3, rc))
	// A (generous) budget makes the coordinator price the query, so its
	// journal record carries an estimate.
	cs.maxPairs = 1 << 40
	coord := httptest.NewServer(cs.handler())
	t.Cleanup(coord.Close)

	putPoints(t, coord.URL, "pts", clusterPoints(120, 2, 11))
	resp, body := doJSON(t, http.MethodPost, coord.URL+"/datasets/pts/selfjoin", map[string]any{"eps": 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selfjoin: %d %v", resp.StatusCode, body)
	}
	total := int64(body["total"].(float64))
	estResp, ok := body["estimated_pairs"].(float64)
	if !ok {
		t.Fatalf("response carries no estimated_pairs: %v", body)
	}

	// (b) coordinator journal: the selfjoin record matches the response
	// and names a trace.
	var coordRec querylog.Record
	for _, q := range getQueries(t, coord.URL, "").Queries {
		if q.Kind == "selfjoin" {
			coordRec = q
			break
		}
	}
	if coordRec.Kind != "selfjoin" {
		t.Fatal("coordinator journal has no selfjoin record")
	}
	if coordRec.ActualPairs != total || coordRec.EstimatedPairs != int64(estResp) {
		t.Fatalf("coordinator record (est %d, actual %d) != response (est %d, actual %d)",
			coordRec.EstimatedPairs, coordRec.ActualPairs, int64(estResp), total)
	}
	if coordRec.Shards != n {
		t.Errorf("coordinator record shards = %d, want %d", coordRec.Shards, n)
	}
	if coordRec.TraceID == "" {
		t.Fatal("coordinator record has no trace ID")
	}

	// Worker journals: each shard served the scattered selfjoin under the
	// SAME trace ID, estimate and actuals filled.
	for i, w := range workers {
		var wrec querylog.Record
		for _, q := range getQueries(t, w.URL, "").Queries {
			if q.Kind == "selfjoin" && q.TraceID == coordRec.TraceID {
				wrec = q
				break
			}
		}
		if wrec.Kind == "" {
			t.Fatalf("worker %d journal has no selfjoin record for trace %s", i, coordRec.TraceID)
		}
		if wrec.EstimatedPairs < 0 {
			t.Errorf("worker %d record carries no estimate: %+v", i, wrec)
		}
		if wrec.Outcome != querylog.OutcomeOK || wrec.Algorithm == "" {
			t.Errorf("worker %d record = %+v", i, wrec)
		}
	}

	// (a) the coordinator stitches one distributed tree for that ID.
	var st struct {
		trace.TraceData
		Sources []cluster.WorkerTrace `json:"sources"`
	}
	if err := json.Unmarshal([]byte(getBody(t, coord.URL+"/debug/traces/"+coordRec.TraceID)), &st); err != nil {
		t.Fatal(err)
	}
	if st.TraceID != coordRec.TraceID {
		t.Fatalf("stitched trace ID %s, want %s", st.TraceID, coordRec.TraceID)
	}
	if len(st.Sources) != n {
		t.Fatalf("stitched trace has %d sources, want %d", len(st.Sources), n)
	}
	for _, src := range st.Sources {
		if src.Err != "" {
			t.Errorf("source %s failed: %s", src.URL, src.Err)
		}
	}
	root, ok := st.Root()
	if !ok || root.Name != "POST /datasets/{name}/selfjoin" {
		t.Fatalf("stitched root = %+v", root)
	}
	// Every span is reachable from the root: one tree, not a forest.
	local := map[string]string{}
	for _, sp := range st.Spans {
		local[sp.SpanID] = sp.ParentID
	}
	reach := func(id string) bool {
		for hops := 0; hops < len(st.Spans)+1; hops++ {
			if id == root.SpanID {
				return true
			}
			next, ok := local[id]
			if !ok {
				return false
			}
			id = next
		}
		return false
	}
	workerServerSpans := 0
	for _, sp := range st.Spans {
		if sp.TraceID != st.TraceID {
			t.Fatalf("span %s belongs to trace %s", sp.SpanID, sp.TraceID)
		}
		if !reach(sp.SpanID) {
			t.Errorf("span %s (%s) not reachable from the root", sp.SpanID, sp.Name)
		}
		if sp.Name == "POST /datasets/{name}/selfjoin" && sp.SpanID != root.SpanID {
			workerServerSpans++
		}
	}
	if workerServerSpans != n {
		t.Fatalf("stitched tree has %d worker server spans, want %d:\n%+v", workerServerSpans, n, st.Spans)
	}

	// (c) runtime health series on both tiers.
	for _, base := range append([]string{coord.URL}, urls...) {
		scrape := getBody(t, base+"/metrics")
		for _, series := range runtimeSeries {
			if !strings.Contains(scrape, series) {
				t.Errorf("%s/metrics missing %s", base, series)
			}
		}
	}
}
