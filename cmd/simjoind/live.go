package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"simjoin"
	"simjoin/internal/live"
	"simjoin/internal/obsv/querylog"
	"simjoin/internal/vec"
)

// liveHooks feeds the live engine's observability callbacks into the
// server's live_* metric series.
func liveHooks(m *metrics) live.Hooks {
	return live.Hooks{
		Append: func(d time.Duration, points int) { m.liveAppend.Observe(d.Seconds()) },
		Batch: func(pairs int) {
			m.liveBatches.Inc()
			m.liveDeltaPairs.Add(int64(pairs))
		},
		CatchUp:    func(pairs int) { m.liveCatchupPairs.Add(int64(pairs)) },
		Subscribed: func() { m.liveSubscribed.Inc() },
		Evicted:    func() { m.liveEvictions.Inc() },
	}
}

// watchRequest is the POST /datasets/{name}/watch body: the standing
// query plus the reconnect cursors.
type watchRequest struct {
	Eps    float64 `json:"eps"`
	Metric string  `json:"metric"`
	// Other turns the self-join into a two-set standing query; pairs are
	// ({name}-index, other-index).
	Other string `json:"other"`
	// After / AfterOther are replay cursors (dataset lengths from earlier
	// batch events): everything past them is re-delivered in one catch-up
	// batch before live delivery. Omitted = subscribe from now;
	// 0 = replay from the beginning.
	After      *int `json:"after"`
	AfterOther *int `json:"after_other"`
	// Buffer is the subscriber's mailbox depth in batch events; falling
	// further behind than this gets the stream evicted (0 = default).
	Buffer int `json:"buffer"`
}

// watchWriteTimeout bounds each write+flush to the subscriber, so a
// stalled client cannot pin the handler goroutine past eviction.
const watchWriteTimeout = 30 * time.Second

// liveError maps engine errors onto HTTP statuses.
func liveError(w http.ResponseWriter, err error) {
	switch err.(type) {
	case live.UnknownDatasetError:
		httpError(w, http.StatusNotFound, "%v", err)
	case live.QueryError:
		httpError(w, http.StatusBadRequest, "%v", err)
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleWatch registers a standing query and streams its delta batches
// as NDJSON until the client disconnects, the dataset goes away, the
// subscriber falls too far behind, or the server shuts down:
//
//	{"event":"hello","dataset":…,"seq":…}      stream opened
//	[i,j]                                      one new pair
//	{"event":"batch","seq":…,"added":…,…}      batch delimiter + resume cursor
//	{"event":"end","reason":…}                 terminal event
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.get(name)
	if !ok {
		httpError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	var req watchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	metric := vec.L2
	if req.Metric != "" {
		var err error
		if metric, err = vec.ParseMetric(req.Metric); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if !(req.Eps > 0) {
		httpError(w, http.StatusBadRequest, "eps must be positive")
		return
	}
	var other *entry
	if req.Other != "" {
		if other, ok = s.get(req.Other); !ok {
			httpError(w, http.StatusNotFound, "no dataset %q", req.Other)
			return
		}
	}
	// Seed live tracking under each entry's lock (never both at once), so
	// the mirrors start at snapshots consistent with the append
	// notifications that follow.
	e.seedLive(s.live, name, req.Eps)
	if other != nil {
		other.seedLive(s.live, req.Other, req.Eps)
	}
	sub, err := s.live.Subscribe(
		live.Query{Dataset: name, Other: req.Other, Eps: req.Eps, Metric: metric},
		live.Options{Buffer: req.Buffer, After: req.After, AfterOther: req.AfterOther},
	)
	if err != nil {
		liveError(w, err)
		return
	}
	defer s.live.Unsubscribe(sub.ID())

	// Journal the watch when the stream ends: ActualPairs is the delta
	// volume delivered over its whole lifetime, ElapsedNS that lifetime.
	watchStart := time.Now()
	var delivered int64
	defer func() {
		recordQuery(s.qlog, s.m, querylog.Record{
			Kind: "watch", Dataset: name, Dataset2: req.Other,
			Eps: req.Eps, Metric: metric.String(), Stream: true,
			EstimatedPairs: -1, ActualPairs: delivered,
			ElapsedNS: int64(time.Since(watchStart)),
			TraceID:   traceIDOf(r), Outcome: querylog.OutcomeOK,
		})
	}()

	s.m.streamRequests.With("POST /datasets/{name}/watch").Inc()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	rc := http.NewResponseController(w)
	flush := func() error {
		_ = rc.SetWriteDeadline(time.Now().Add(watchWriteTimeout))
		if err := bw.Flush(); err != nil {
			return err
		}
		return rc.Flush()
	}
	hello := map[string]any{
		"event": "hello", "dataset": name, "seq": sub.BaseSeq(),
		"eps": req.Eps, "metric": metric.String(),
	}
	if req.Other != "" {
		hello["other"] = req.Other
		hello["seq_other"] = sub.BaseSeqOther()
	}
	if !writeEventLine(bw, hello) || flush() != nil {
		return
	}
	for {
		select {
		case ev, chOpen := <-sub.Events():
			if !chOpen {
				writeEventLine(bw, map[string]any{"event": "end", "reason": sub.Reason()})
				_ = flush()
				return
			}
			for _, p := range ev.Pairs {
				fmt.Fprintf(bw, "[%d,%d]\n", p[0], p[1])
			}
			delivered += int64(len(ev.Pairs))
			s.m.streamPairs.Add(int64(len(ev.Pairs)))
			marker := map[string]any{
				"event": "batch", "seq": ev.Seq, "added": ev.Added, "pairs": len(ev.Pairs),
			}
			if req.Other != "" {
				marker["seq_other"] = ev.SeqOther
			}
			if ev.CatchUp {
				marker["catch_up"] = true
			}
			if !writeEventLine(bw, marker) || flush() != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// writeEventLine renders one NDJSON event object.
func writeEventLine(bw *bufio.Writer, v any) bool {
	line, err := json.Marshal(v)
	if err != nil {
		return false
	}
	bw.Write(line)
	return bw.WriteByte('\n') == nil
}

// handleGetDataset answers GET /datasets/{name}: the dataset's shape
// plus its durable footprint, live-engine state, and sketch metadata —
// the single-dataset introspection the aggregate list can't give. With
// ?eps= (and optional &metric=) the answer gains an "estimate" block:
// the planner's predicted self-join size at that threshold, which is
// also how a coordinator prices a distributed query shard by shard.
func (s *server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.get(name)
	if !ok {
		httpError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	ds := e.dataset()
	out := map[string]any{
		"name": name,
		"len":  ds.Len(),
		"dims": ds.Dims(),
		"live": s.live.Stats(name),
	}
	if s.st != nil {
		if wb, ok := s.st.DatasetWALBytes(name); ok {
			out["wal_bytes"] = wb
		}
	}
	if sk := ds.Sketch(); sk != nil {
		out["sketch"] = map[string]any{
			"points":        sk.Points(),
			"reservoir":     sk.Reservoir(),
			"sampled_pairs": sk.SampledPairs(),
		}
	}
	if v := r.URL.Query().Get("eps"); v != "" {
		eps, err := strconv.ParseFloat(v, 64)
		if err != nil || !(eps > 0) {
			httpError(w, http.StatusBadRequest, "eps must be a positive number, got %q", v)
			return
		}
		m := simjoin.L2
		if ms := r.URL.Query().Get("metric"); ms != "" {
			if m, err = simjoin.ParseMetric(ms); err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
		pl := simjoin.PlanSelfJoin(ds, m, eps)
		s.m.estimateRequests.With(estimateSource(pl.Sketched)).Inc()
		out["estimate"] = map[string]any{
			"eps":         eps,
			"metric":      m.String(),
			"algorithm":   string(pl.Algorithm),
			"pairs":       pl.EstimatedPairs,
			"selectivity": pl.Selectivity,
			"sketched":    pl.Sketched,
		}
	}
	writeJSON(w, out)
}
