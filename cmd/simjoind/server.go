package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"simjoin"
	"simjoin/internal/live"
	"simjoin/internal/obsv/querylog"
	"simjoin/internal/obsv/trace"
	"simjoin/internal/store"
)

// defaultMaxBodyBytes bounds request bodies unless -max-body-bytes says
// otherwise; datasets beyond the limit belong in files loaded at startup
// (-load) or in the durable data directory (-data), not in request
// payloads.
const defaultMaxBodyBytes = 64 << 20

// server holds the named datasets and serves join/range/KNN queries over
// them. All handlers are safe for concurrent use: the registry is guarded
// by a RWMutex and datasets are immutable once registered (upload replaces
// wholesale).
type server struct {
	mu   sync.RWMutex
	sets map[string]*entry
	m    *metrics
	// st, when non-nil, is the durable storage engine every mutation tees
	// through; rec is what it replayed at boot (reported by /healthz).
	st  *store.Catalog
	rec store.RecoveryInfo
	// maxBody bounds request bodies (-max-body-bytes).
	maxBody int64
	// tracer retains completed request traces for GET /debug/traces;
	// log, when non-nil, gets one structured access-log line per request.
	tracer *trace.Tracer
	log    *slog.Logger
	// qlog is the per-query journal behind GET /debug/queries: every
	// join/KNN/range/watch query served, with its estimate, actuals and
	// trace ID.
	qlog *querylog.Log
	// live is the continuous-query engine: incremental per-dataset
	// indexes plus the standing-query subscriptions watch streams serve.
	live *live.Engine
	// maxPairs, when > 0, is the admission budget (-max-pairs): join
	// queries whose predicted result size exceeds it are refused with
	// 429 — or run counting-only when the request sets "degrade" —
	// instead of materializing a result nobody bounded.
	maxPairs int64
	// sketch (-sketch, default on) gives every registered dataset a
	// resident join-size sketch, maintained incrementally across appends
	// and rebuilt on recovery, so estimates never touch the raw points.
	sketch bool
	// debug additionally mounts net/http/pprof under /debug/pprof/.
	debug bool
}

// entry is one registered dataset plus its lazily built query index.
// Appends are copy-on-write: a new Dataset replaces the pointer and the
// index is invalidated, so in-flight queries keep reading the immutable
// snapshot they started with.
type entry struct {
	mu sync.Mutex
	ds *simjoin.Dataset
	nn *simjoin.NeighborIndex
}

// dataset returns the current immutable snapshot.
func (e *entry) dataset() *simjoin.Dataset {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ds
}

// index returns the entry's neighbor index, building it if stale.
func (e *entry) index() *simjoin.NeighborIndex {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.nn == nil {
		e.nn = simjoin.NewNeighborIndex(e.ds)
	}
	return e.nn
}

// appendPoints adds points copy-on-write and invalidates the index. It
// returns the new length, or an error on a dimensionality mismatch
// (nothing changes in that case). The clone reserves capacity for the
// whole batch up front, so an append costs one bulk copy of the existing
// points — not a point-by-point rebuild. notify, when non-nil, runs
// under the entry lock after a successful append with the batch and the
// new length — the same lock live tracking seeds under, so the engine
// sees every batch exactly once and in order.
func (e *entry) appendPoints(pts [][]float64, notify func(pts [][]float64, total int)) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, p := range pts {
		if len(p) != e.ds.Dims() {
			return 0, fmt.Errorf("point %d has %d dims, dataset has %d", i, len(p), e.ds.Dims())
		}
	}
	grown := e.ds.CloneWithCap(len(pts))
	for _, p := range pts {
		grown.Append(p)
	}
	e.adoptGrown(grown, pts)
	if notify != nil {
		notify(pts, e.ds.Len())
	}
	return e.ds.Len(), nil
}

// adoptGrown swaps in a grown snapshot under the entry lock,
// invalidating the index and carrying the predecessor's join-size
// sketch forward: the clone/wrap deliberately dropped the sketch
// pointer, so the batch is attached and observed exactly once here.
func (e *entry) adoptGrown(grown *simjoin.Dataset, pts [][]float64) {
	if sk := e.ds.Sketch(); sk != nil {
		grown.AttachSketch(sk)
		for _, p := range pts {
			sk.Observe(p)
		}
	}
	e.ds = grown
	e.nn = nil
}

// appendThrough routes an append through the durable store and adopts
// the grown dataset it returns, so the in-memory snapshot and the WAL
// can never disagree on ordering for this dataset. notify has the
// appendPoints contract and fires only after the store committed.
func (e *entry) appendThrough(ctx context.Context, st *store.Catalog, name string, pts [][]float64, notify func(pts [][]float64, total int)) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	grown, err := st.Append(ctx, name, pts)
	if err != nil {
		return 0, err
	}
	e.adoptGrown(simjoin.WrapDataset(grown), pts)
	if notify != nil {
		notify(pts, e.ds.Len())
	}
	return e.ds.Len(), nil
}

// seedLive registers the entry's current snapshot with the live engine.
// Holding the entry lock across the snapshot + Track pair means no
// append can slip between them: the mirror starts exactly at this
// snapshot and the append notifications (which run under the same lock)
// carry everything after it.
func (e *entry) seedLive(eng *live.Engine, name string, eps float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	eng.Track(name, e.ds.Internal(), eps)
}

func newServer() *server {
	s := &server{
		sets:    make(map[string]*entry),
		m:       newMetrics(),
		maxBody: defaultMaxBodyBytes,
		tracer:  trace.New(defaultTraceCapacity),
		qlog:    querylog.New(0),
		sketch:  true,
	}
	s.live = live.New(liveHooks(s.m))
	s.m.reg.NewGaugeFunc("simjoind_live_subscriptions",
		"Standing-query subscriptions currently active.",
		func() float64 { return float64(s.live.Subscriptions()) })
	return s
}

// handler wires up the routes, each wrapped in the tracing + access-log +
// request/error/latency middleware, behind GET /metrics (Prometheus
// text), the legacy GET /debug/vars JSON, and GET /debug/traces.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, instrument(s.m, s.tracer, s.log, pattern, h))
	}
	handle("GET /healthz", s.handleHealthz)
	handle("GET /datasets", s.handleList)
	handle("GET /datasets/{name}", s.handleGetDataset)
	handle("GET /datasets/{name}/explain", s.handleExplain)
	handle("PUT /datasets/{name}", s.handlePut)
	handle("DELETE /datasets/{name}", s.handleDelete)
	handle("POST /datasets/{name}/points", s.handleAppend)
	handle("POST /datasets/{name}/watch", s.handleWatch)
	handle("POST /datasets/{name}/selfjoin", s.handleSelfJoin)
	handle("POST /datasets/{name}/range", s.handleRange)
	handle("POST /datasets/{name}/knn", s.handleKNN)
	handle("POST /join", s.handleJoin)
	mux.Handle("GET /metrics", s.m.promHandler())
	mux.HandleFunc("GET /debug/vars", s.m.varsHandler)
	mux.HandleFunc("GET /debug/traces", tracesHandler(s.tracer))
	mux.HandleFunc("GET /debug/traces/{id}", traceByIDHandler(s.tracer))
	mux.HandleFunc("GET /debug/queries", queriesHandler(s.qlog))
	if s.debug {
		mountPprof(mux)
	}
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.sets)
	s.mu.RUnlock()
	out := map[string]any{"status": "ok", "datasets": n, "build": buildVersion}
	if s.st != nil {
		out["persistence"] = map[string]any{
			"enabled":            true,
			"dir":                s.st.Dir(),
			"wal_bytes":          s.st.WALBytes(),
			"recovered_datasets": len(s.rec.Datasets),
			"replayed_records":   s.rec.Records(),
			"truncated_tails":    s.rec.TruncatedTails(),
			"quarantined":        len(s.rec.Quarantined),
		}
	}
	writeJSON(w, out)
}

// storeStatus maps storage-engine errors onto HTTP statuses: caller
// mistakes are 4xx, IO failures 500.
func storeStatus(err error) int {
	switch {
	case errors.Is(err, store.ErrNotFound):
		return http.StatusNotFound
	case errors.As(err, &store.InputError{}):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// httpError writes a JSON error with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// newEntry wraps a dataset for serving, attaching a resident join-size
// sketch when the server runs with sketches enabled: one pass over the
// points here, O(1) per point on every later append.
func (s *server) newEntry(ds *simjoin.Dataset) *entry {
	if s.sketch {
		ds.EnableSketch()
	}
	return &entry{ds: ds}
}

// get fetches a dataset entry by name.
func (s *server) get(name string) (*entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.sets[name]
	return e, ok
}

// datasetInfo is the list/upload response shape.
type datasetInfo struct {
	Name string `json:"name"`
	Len  int    `json:"len"`
	Dims int    `json:"dims"`
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]datasetInfo, 0, len(s.sets))
	for name, e := range s.sets {
		ds := e.dataset()
		out = append(out, datasetInfo{Name: name, Len: ds.Len(), Dims: ds.Dims()})
	}
	s.mu.RUnlock()
	writeJSON(w, out)
}

// putRequest is the JSON upload shape; CSV uploads use Content-Type
// text/csv with raw rows instead.
type putRequest struct {
	Points [][]float64 `json:"points"`
}

// decodeUpload parses an upload body — JSON {"points": …} or text/csv —
// into a rectangular, non-empty point list, writing the HTTP error
// itself when the body is unusable. Shared by worker and coordinator
// upload handlers.
func decodeUpload(w http.ResponseWriter, r *http.Request, limit int64) ([][]float64, bool) {
	body := http.MaxBytesReader(w, r.Body, limit)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "text/csv") {
		ds, err := simjoin.ReadCSV(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parsing CSV: %v", err)
			return nil, false
		}
		pts := make([][]float64, ds.Len())
		for i := range pts {
			pts[i] = ds.Point(i)
		}
		return pts, true
	}
	var req putRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing JSON: %v", err)
		return nil, false
	}
	if len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, "no points in upload")
		return nil, false
	}
	for i, p := range req.Points {
		if len(p) != len(req.Points[0]) {
			httpError(w, http.StatusBadRequest, "point %d has %d dims, want %d", i, len(p), len(req.Points[0]))
			return nil, false
		}
	}
	return req.Points, true
}

func (s *server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if strings.TrimSpace(name) == "" {
		httpError(w, http.StatusBadRequest, "dataset name required")
		return
	}
	pts, ok := decodeUpload(w, r, s.maxBody)
	if !ok {
		return
	}
	ds := simjoin.FromPoints(pts)
	if s.st != nil {
		if err := s.st.Put(r.Context(), name, ds.Internal()); err != nil {
			httpError(w, storeStatus(err), "%v", err)
			return
		}
	}
	s.mu.Lock()
	_, replaced := s.sets[name]
	s.sets[name] = s.newEntry(ds)
	s.mu.Unlock()
	if replaced {
		// Standing queries were registered against the old incarnation's
		// indexes; end their streams cleanly rather than silently
		// switching datasets under them.
		s.live.Drop(name, live.ReasonReplaced)
	}
	writeJSON(w, datasetInfo{Name: name, Len: ds.Len(), Dims: ds.Dims()})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.sets[name]
	delete(s.sets, name)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	// In-flight watch streams for this dataset end with a terminal
	// {"event":"end","reason":"dataset deleted"} line, not a dropped
	// connection.
	s.live.Drop(name, live.ReasonDeleted)
	if s.st != nil {
		if err := s.st.Delete(r.Context(), name); err != nil && !errors.Is(err, store.ErrNotFound) {
			// The entry is gone from memory but its files remain; surface
			// the IO failure rather than pretending the delete is durable.
			httpError(w, storeStatus(err), "%v", err)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleAppend grows a dataset in place (POST …/points with
// {"points": [[…], …]}); subsequent range/KNN queries see the new points
// after a lazy index rebuild.
func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	e, ok := s.get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no dataset %q", r.PathValue("name"))
		return
	}
	var req putRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing JSON: %v", err)
		return
	}
	if len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, "no points in append")
		return
	}
	name := r.PathValue("name")
	notify := func(pts [][]float64, total int) {
		s.live.Append(r.Context(), name, pts, total)
	}
	var n int
	var err error
	if s.st != nil {
		n, err = e.appendThrough(r.Context(), s.st, name, req.Points, notify)
		if err != nil {
			httpError(w, storeStatus(err), "%v", err)
			return
		}
	} else {
		n, err = e.appendPoints(req.Points, notify)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	writeJSON(w, datasetInfo{Name: name, Len: n, Dims: e.dataset().Dims()})
}

// joinParams is the shared query shape for self- and two-set joins.
type joinParams struct {
	Eps       float64 `json:"eps"`
	Metric    string  `json:"metric"`    // "L2" (default), "L1", "Linf"
	Algorithm string  `json:"algorithm"` // default "ekdb"; "auto" allowed
	Workers   int     `json:"workers"`
	Float32   bool    `json:"float32"`   // float32 kernel mode (see docs/KERNELS.md)
	MaxPairs  int     `json:"max_pairs"` // truncate the response (0 = no cap)
	Stream    bool    `json:"stream"`    // NDJSON: one [i,j] line per pair, then a summary object
	// Degrade opts into the admission budget's soft failure mode: a
	// query whose estimated result size exceeds the server's -max-pairs
	// runs counting-only (exact total, no pairs) instead of being
	// rejected with 429.
	Degrade bool `json:"degrade"`
}

func (p joinParams) options() (simjoin.Options, error) {
	opt := simjoin.Options{Eps: p.Eps, Workers: p.Workers, Algorithm: simjoin.Algorithm(p.Algorithm), Float32: p.Float32}
	if p.Metric != "" {
		m, err := simjoin.ParseMetric(p.Metric)
		if err != nil {
			return opt, err
		}
		opt.Metric = m
	}
	return opt, nil
}

// joinResponse is the join result shape.
type joinResponse struct {
	Pairs     [][2]int `json:"pairs"`
	Total     int64    `json:"total"`
	Truncated bool     `json:"truncated"`
	ElapsedMS float64  `json:"elapsed_ms"`
	// EstimatedPairs is the planner's pre-run prediction, present when
	// one was made (a sketch was resident, or admission control forced a
	// sampling estimate).
	EstimatedPairs *int64 `json:"estimated_pairs,omitempty"`
	// Degraded marks a counting-only run forced by the admission budget:
	// Total is exact, Pairs is empty.
	Degraded bool `json:"degraded,omitempty"`
}

func toJoinResponse(res *simjoin.Result, maxPairs int) joinResponse {
	out := joinResponse{Total: res.Stats.Results, ElapsedMS: float64(res.Stats.Elapsed.Microseconds()) / 1000}
	pairs := res.Pairs
	if maxPairs > 0 && len(pairs) > maxPairs {
		pairs = pairs[:maxPairs]
		out.Truncated = true
	}
	out.Pairs = make([][2]int, len(pairs))
	for i, p := range pairs {
		out.Pairs[i] = [2]int{p.I, p.J}
	}
	return out
}

// streamFlushEvery is how many NDJSON pair lines accumulate between
// explicit flushes to the client.
const streamFlushEvery = 1024

// streamPairs answers a join request as NDJSON — one [i,j] line per pair
// the moment the join finds it, closed by a summary object — so neither
// the server nor the client ever holds the full pair set. The route's
// stream counters are charged here, where the pair volume is visible.
// est, when >= 0, is the pre-run prediction and is echoed in the summary
// as estimated_pairs next to the actual total. each runs the streaming
// join with the provided emit callback; its only possible errors are
// validation errors raised before the first pair, so they can still be
// answered with a plain HTTP error.
func streamPairs(w http.ResponseWriter, m *metrics, route string, maxPairs int, est int64, each func(emit func(i, j int)) (simjoin.Stats, error)) {
	m.streamRequests.With(route).Inc()
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	flusher, _ := w.(http.Flusher)
	var sent int64
	emit := func(i, j int) {
		if maxPairs > 0 && sent >= int64(maxPairs) {
			return
		}
		sent++
		fmt.Fprintf(bw, "[%d,%d]\n", i, j)
		if sent%streamFlushEvery == 0 {
			_ = bw.Flush()
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	st, err := each(emit)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m.streamPairs.Add(sent)
	summary := map[string]any{
		"total":      st.Results,
		"truncated":  maxPairs > 0 && st.Results > int64(maxPairs),
		"elapsed_ms": float64(st.Elapsed.Microseconds()) / 1000,
	}
	if est >= 0 {
		summary["estimated_pairs"] = est
	}
	line, _ := json.Marshal(summary)
	bw.Write(line)
	bw.WriteByte('\n')
	_ = bw.Flush()
}

// admission is the outcome of pricing one join request: the prediction
// (est < 0 when no estimate was made) and whether it breaks the budget.
type admission struct {
	est    int64
	source string
	over   bool
}

// price turns a planner report into an admission decision, charging the
// per-source estimate counter.
func (s *server) price(pl simjoin.Plan) admission {
	a := admission{est: pl.EstimatedPairs, source: estimateSource(pl.Sketched)}
	s.m.estimateRequests.With(a.source).Inc()
	a.over = s.maxPairs > 0 && a.est > s.maxPairs
	return a
}

// shouldPrice reports whether a request gets a pre-run estimate at all:
// always when a budget is set (admission needs the number), otherwise
// only when every listed dataset has a resident sketch making the
// estimate free. !(eps > 0) short-circuits — the join itself will
// reject the threshold with a clearer message.
func (s *server) shouldPrice(eps float64, sets ...*simjoin.Dataset) bool {
	if !(eps > 0) {
		return false
	}
	if s.maxPairs > 0 {
		return true
	}
	for _, ds := range sets {
		if ds.Sketch() == nil {
			return false
		}
	}
	return true
}

// rejectOverBudget answers 429, carrying the estimate that triggered it
// so the caller can see how far over budget the query was.
func rejectOverBudget(w http.ResponseWriter, m *metrics, est, budget int64) {
	m.estimateRejected.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error":           fmt.Sprintf(`estimated result size %d exceeds the server's -max-pairs budget %d; narrow eps, or set "degrade": true for a counting-only run`, est, budget),
		"estimated_pairs": est,
		"max_pairs":       budget,
	})
}

// degradedResponse assembles the counting-only answer of an over-budget
// run the caller opted to degrade.
func degradedResponse(total int64, elapsedMS float64, est int64) joinResponse {
	return joinResponse{
		Pairs:          [][2]int{},
		Total:          total,
		ElapsedMS:      elapsedMS,
		EstimatedPairs: &est,
		Degraded:       true,
	}
}

func (s *server) handleSelfJoin(w http.ResponseWriter, r *http.Request) {
	e, ok := s.get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no dataset %q", r.PathValue("name"))
		return
	}
	var p joinParams
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&p); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	opt, err := p.options()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt.Trace = trace.FromContext(r.Context())
	ds := e.dataset()
	adm := admission{est: -1}
	if s.shouldPrice(opt.Eps, ds) {
		adm = s.price(simjoin.PlanSelfJoin(ds, opt.Metric, opt.Eps))
	}
	rec := querylog.Record{
		Kind: "selfjoin", Dataset: r.PathValue("name"),
		Eps: p.Eps, Metric: opt.Metric.String(), Algorithm: p.Algorithm,
		Stream: p.Stream, EstimatedPairs: adm.est, TraceID: traceIDOf(r),
	}
	start := time.Now()
	var js simjoin.JoinStats
	opt.Stats = &js
	if adm.over {
		if !p.Degrade {
			rejectOverBudget(w, s.m, adm.est, s.maxPairs)
			recordFailure(s.qlog, s.m, rec, start, querylog.OutcomeRejected, nil)
			return
		}
		s.m.estimateDegraded.Inc()
		collect := false
		opt.CollectPairs = &collect
		res, err := simjoin.SelfJoin(ds, opt)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			recordFailure(s.qlog, s.m, rec, start, querylog.OutcomeError, err)
			return
		}
		s.m.observeEstimateRatio(adm.est, res.Stats.Results)
		fillFromRun(&rec, js, res.Stats.Results)
		rec.Outcome = querylog.OutcomeDegraded
		recordQuery(s.qlog, s.m, rec)
		writeJSON(w, degradedResponse(res.Stats.Results, float64(res.Stats.Elapsed.Microseconds())/1000, adm.est))
		return
	}
	if p.Stream {
		streamPairs(w, s.m, "POST /datasets/{name}/selfjoin", p.MaxPairs, adm.est, func(emit func(i, j int)) (simjoin.Stats, error) {
			st, err := simjoin.SelfJoinEach(ds, opt, emit)
			if err != nil {
				recordFailure(s.qlog, s.m, rec, start, querylog.OutcomeError, err)
				return st, err
			}
			s.m.observeEstimateRatio(adm.est, st.Results)
			fillFromRun(&rec, js, st.Results)
			rec.Outcome = querylog.OutcomeOK
			recordQuery(s.qlog, s.m, rec)
			return st, nil
		})
		return
	}
	res, err := simjoin.SelfJoin(ds, opt)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		recordFailure(s.qlog, s.m, rec, start, querylog.OutcomeError, err)
		return
	}
	s.m.observeEstimateRatio(adm.est, res.Stats.Results)
	fillFromRun(&rec, js, res.Stats.Results)
	rec.Outcome = querylog.OutcomeOK
	recordQuery(s.qlog, s.m, rec)
	out := toJoinResponse(res, p.MaxPairs)
	if adm.est >= 0 {
		out.EstimatedPairs = &adm.est
	}
	writeJSON(w, out)
}

// twoJoinRequest names the two sides of a cross-dataset join.
type twoJoinRequest struct {
	A string `json:"a"`
	B string `json:"b"`
	joinParams
}

func (s *server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req twoJoinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	ea, ok := s.get(req.A)
	if !ok {
		httpError(w, http.StatusNotFound, "no dataset %q", req.A)
		return
	}
	eb, ok := s.get(req.B)
	if !ok {
		httpError(w, http.StatusNotFound, "no dataset %q", req.B)
		return
	}
	da, db := ea.dataset(), eb.dataset()
	if da.Dims() != db.Dims() {
		httpError(w, http.StatusBadRequest, "dimensionality mismatch: %d vs %d", da.Dims(), db.Dims())
		return
	}
	opt, err := req.options()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt.Trace = trace.FromContext(r.Context())
	adm := admission{est: -1}
	if s.shouldPrice(opt.Eps, da, db) {
		adm = s.price(simjoin.PlanJoin(da, db, opt.Metric, opt.Eps))
	}
	rec := querylog.Record{
		Kind: "join", Dataset: req.A, Dataset2: req.B,
		Eps: req.Eps, Metric: opt.Metric.String(), Algorithm: req.Algorithm,
		Stream: req.Stream, EstimatedPairs: adm.est, TraceID: traceIDOf(r),
	}
	start := time.Now()
	var js simjoin.JoinStats
	opt.Stats = &js
	if adm.over {
		if !req.Degrade {
			rejectOverBudget(w, s.m, adm.est, s.maxPairs)
			recordFailure(s.qlog, s.m, rec, start, querylog.OutcomeRejected, nil)
			return
		}
		s.m.estimateDegraded.Inc()
		collect := false
		opt.CollectPairs = &collect
		res, err := simjoin.Join(da, db, opt)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			recordFailure(s.qlog, s.m, rec, start, querylog.OutcomeError, err)
			return
		}
		s.m.observeEstimateRatio(adm.est, res.Stats.Results)
		fillFromRun(&rec, js, res.Stats.Results)
		rec.Outcome = querylog.OutcomeDegraded
		recordQuery(s.qlog, s.m, rec)
		writeJSON(w, degradedResponse(res.Stats.Results, float64(res.Stats.Elapsed.Microseconds())/1000, adm.est))
		return
	}
	if req.Stream {
		streamPairs(w, s.m, "POST /join", req.MaxPairs, adm.est, func(emit func(i, j int)) (simjoin.Stats, error) {
			st, err := simjoin.JoinEach(da, db, opt, emit)
			if err != nil {
				recordFailure(s.qlog, s.m, rec, start, querylog.OutcomeError, err)
				return st, err
			}
			s.m.observeEstimateRatio(adm.est, st.Results)
			fillFromRun(&rec, js, st.Results)
			rec.Outcome = querylog.OutcomeOK
			recordQuery(s.qlog, s.m, rec)
			return st, nil
		})
		return
	}
	res, err := simjoin.Join(da, db, opt)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		recordFailure(s.qlog, s.m, rec, start, querylog.OutcomeError, err)
		return
	}
	s.m.observeEstimateRatio(adm.est, res.Stats.Results)
	fillFromRun(&rec, js, res.Stats.Results)
	rec.Outcome = querylog.OutcomeOK
	recordQuery(s.qlog, s.m, rec)
	out := toJoinResponse(res, req.MaxPairs)
	if adm.est >= 0 {
		out.EstimatedPairs = &adm.est
	}
	writeJSON(w, out)
}

// pointQuery is the range/KNN request shape.
type pointQuery struct {
	Point  []float64 `json:"point"`
	Radius float64   `json:"radius"` // range queries
	K      int       `json:"k"`      // KNN queries
	Metric string    `json:"metric"`
}

func (q pointQuery) metric() (simjoin.Metric, error) {
	if q.Metric == "" {
		return simjoin.L2, nil
	}
	return simjoin.ParseMetric(q.Metric)
}

func (s *server) handleRange(w http.ResponseWriter, r *http.Request) {
	e, ok := s.get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no dataset %q", r.PathValue("name"))
		return
	}
	var q pointQuery
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&q); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	m, err := q.metric()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ds := e.dataset()
	if len(q.Point) != ds.Dims() {
		httpError(w, http.StatusBadRequest, "query has %d dims, dataset has %d", len(q.Point), ds.Dims())
		return
	}
	if !(q.Radius > 0) {
		httpError(w, http.StatusBadRequest, "radius must be positive")
		return
	}
	start := time.Now()
	idx := e.index().Range(q.Point, m, q.Radius)
	if idx == nil {
		idx = []int{}
	}
	recordQuery(s.qlog, s.m, querylog.Record{
		Kind: "range", Dataset: r.PathValue("name"), Eps: q.Radius, Metric: m.String(),
		EstimatedPairs: -1, ActualPairs: int64(len(idx)),
		ElapsedNS: int64(time.Since(start)), TraceID: traceIDOf(r), Outcome: querylog.OutcomeOK,
	})
	writeJSON(w, map[string]any{"indexes": idx})
}

func (s *server) handleKNN(w http.ResponseWriter, r *http.Request) {
	e, ok := s.get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "no dataset %q", r.PathValue("name"))
		return
	}
	var q pointQuery
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&q); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	m, err := q.metric()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(q.Point) != e.dataset().Dims() {
		httpError(w, http.StatusBadRequest, "query has %d dims, dataset has %d", len(q.Point), e.dataset().Dims())
		return
	}
	if q.K < 1 {
		httpError(w, http.StatusBadRequest, "k must be ≥ 1")
		return
	}
	start := time.Now()
	nbrs := e.index().KNN(q.Point, q.K, m)
	recordQuery(s.qlog, s.m, querylog.Record{
		Kind: "knn", Dataset: r.PathValue("name"), Metric: m.String(),
		EstimatedPairs: -1, ActualPairs: int64(len(nbrs)),
		ElapsedNS: int64(time.Since(start)), TraceID: traceIDOf(r), Outcome: querylog.OutcomeOK,
	})
	type nb struct {
		Index int     `json:"index"`
		Dist  float64 `json:"dist"`
	}
	out := make([]nb, len(nbrs))
	for i, n := range nbrs {
		out[i] = nb{Index: n.Index, Dist: n.Dist}
	}
	writeJSON(w, map[string]any{"neighbors": out})
}
