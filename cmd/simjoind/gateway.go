package main

import (
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"simjoin/internal/gateway"
	"simjoin/internal/obsv/trace"
)

// gatewayReloadInterval is how often the gateway polls the -tenants
// file's mtime; SIGHUP reloads immediately without waiting for a tick.
const gatewayReloadInterval = 2 * time.Second

// startGateway builds the -gateway handler: the multi-tenant front door
// over the -backends fleet, with the -tenants config installed and kept
// hot via SIGHUP and mtime polling. The returned stop func tears the
// reload machinery down and drains in-flight shadow requests.
func startGateway(logger *slog.Logger, backendsFlag, tenantsPath string, maxBody int64, traceRing int) (http.Handler, func(), error) {
	if backendsFlag == "" {
		return nil, nil, fmt.Errorf("-gateway requires -backends")
	}
	if tenantsPath == "" {
		return nil, nil, fmt.Errorf("-gateway requires -tenants (see docs/GATEWAY.md for the config shape)")
	}
	urls, err := parseWorkers(backendsFlag)
	if err != nil {
		return nil, nil, fmt.Errorf("parsing -backends: %w", err)
	}
	g, err := gateway.New(gateway.Options{
		Backends: urls,
		Logger:   logger,
		Tracer:   trace.New(traceRing),
		MaxBody:  maxBody,
		Build:    buildVersion,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := g.LoadConfigFile(tenantsPath); err != nil {
		return nil, nil, err
	}
	logger.Info("gateway config loaded", "path", tenantsPath, "backends", len(urls))

	stop := make(chan struct{})
	go g.WatchConfig(stop, gatewayReloadInterval)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for {
			select {
			case <-stop:
				signal.Stop(hup)
				return
			case <-hup:
				if err := g.Reload(); err != nil {
					logger.Error("SIGHUP reload failed; keeping previous config", "error", err)
				} else {
					logger.Info("SIGHUP reload applied", "path", tenantsPath)
				}
			}
		}
	}()
	return g.Handler(), func() {
		close(stop)
		g.ShadowDrain()
	}, nil
}
