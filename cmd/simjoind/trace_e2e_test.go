package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"simjoin/internal/obsv/trace"
)

// getTraces fetches and decodes a daemon's /debug/traces.
func getTraces(t *testing.T, base string) []trace.TraceData {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces: %d", resp.StatusCode)
	}
	var out []trace.TraceData
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// traceWithRoot returns the first trace whose root span has the given
// name.
func traceWithRoot(traces []trace.TraceData, name string) (trace.TraceData, bool) {
	for _, td := range traces {
		if root, ok := td.Root(); ok && root.Name == name {
			return td, true
		}
	}
	return trace.TraceData{}, false
}

// TestClusterTracePropagation is the tentpole's end-to-end test: one
// distributed self-join over two real in-process workers yields, on the
// coordinator, a single trace with the server span at the root and one
// shard child span per worker — and each worker retains its own trace
// under the SAME trace ID, parented to the coordinator's RPC attempt,
// because the traceparent header crossed the HTTP boundary.
func TestClusterTracePropagation(t *testing.T) {
	coord, workers := startCluster(t, 2, 0.3)
	putPoints(t, coord.URL, "pts", clusterPoints(60, 2, 7))

	resp, body := doJSON(t, http.MethodPost, coord.URL+"/datasets/pts/selfjoin",
		map[string]any{"eps": 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selfjoin: %d %v", resp.StatusCode, body)
	}

	const route = "POST /datasets/{name}/selfjoin"
	td, ok := traceWithRoot(getTraces(t, coord.URL), route)
	if !ok {
		t.Fatal("coordinator retained no selfjoin trace")
	}
	root, _ := td.Root()
	if got := root.Attr("status"); got != "200" {
		t.Errorf("root span status = %q, want 200", got)
	}
	var shardSpans []trace.SpanData
	for _, sp := range td.Spans {
		if sp.Name == "shard.selfjoin" {
			shardSpans = append(shardSpans, sp)
			if sp.TraceID != td.TraceID {
				t.Errorf("shard span trace %s, want %s", sp.TraceID, td.TraceID)
			}
			if sp.ParentID != root.SpanID {
				t.Errorf("shard span parent %s, want root %s", sp.ParentID, root.SpanID)
			}
			if sp.Attr("status") != "ok" {
				t.Errorf("shard span status = %q, want ok", sp.Attr("status"))
			}
		}
	}
	if len(shardSpans) != len(workers) {
		t.Fatalf("coordinator trace has %d shard spans, want %d:\n%+v",
			len(shardSpans), len(workers), td.Spans)
	}
	// Each RPC attempt under a shard span carried the traceparent the
	// worker continued: the worker's own trace shares the trace ID and
	// parents its server span to one of the coordinator's attempt spans.
	attempts := map[string]bool{}
	for _, sp := range td.Spans {
		if sp.Name == "rclient.attempt" {
			attempts[sp.SpanID] = true
		}
	}
	if len(attempts) < len(workers) {
		t.Fatalf("coordinator trace has %d rclient.attempt spans, want ≥ %d", len(attempts), len(workers))
	}
	for i, w := range workers {
		wtd, ok := traceWithRoot(getTraces(t, w.URL), route)
		if !ok {
			t.Fatalf("worker %d retained no selfjoin trace", i)
		}
		if wtd.TraceID != td.TraceID {
			t.Errorf("worker %d trace %s, want coordinator's %s", i, wtd.TraceID, td.TraceID)
		}
		wroot, _ := wtd.Root()
		if !attempts[wroot.ParentID] {
			t.Errorf("worker %d root parent %s is not a coordinator attempt span", i, wroot.ParentID)
		}
	}
}

// TestWorkerJoinSpanUnderServerSpan: a worker's own trace nests the
// library's entry-point span (with its work counters) under the HTTP
// server span.
func TestWorkerJoinSpanUnderServerSpan(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {0.05, 0}, {0.9, 0.9}})
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/selfjoin", map[string]any{"eps": 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selfjoin: %d %v", resp.StatusCode, body)
	}
	td, ok := traceWithRoot(getTraces(t, ts.URL), "POST /datasets/{name}/selfjoin")
	if !ok {
		t.Fatal("no selfjoin trace retained")
	}
	root, _ := td.Root()
	kids := td.ChildrenOf(root.SpanID)
	if len(kids) != 1 || kids[0].Name != "simjoin.SelfJoin" {
		t.Fatalf("server span children = %+v, want one simjoin.SelfJoin", kids)
	}
	if kids[0].Attr("algorithm") == "" {
		t.Error("join span missing algorithm attr")
	}
	var pairs int64 = -1
	for _, c := range kids[0].Counters {
		if c.Key == "pairs_emitted" {
			pairs = c.Value
		}
	}
	if pairs != 1 {
		t.Errorf("join span pairs_emitted = %d, want 1", pairs)
	}
}

// TestErrorResponsesLogTraceID is the logging satellite's contract: a
// failed request produces a structured log line at WARN or above whose
// trace_id matches a trace retained in /debug/traces.
func TestErrorResponsesLogTraceID(t *testing.T) {
	var buf bytes.Buffer
	srv := newServer()
	srv.log = slog.New(slog.NewJSONHandler(&buf, nil))
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/datasets/missing/selfjoin", map[string]any{"eps": 0.1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}

	var line struct {
		Level   string `json:"level"`
		Msg     string `json:"msg"`
		Status  int    `json:"status"`
		Route   string `json:"route"`
		TraceID string `json:"trace_id"`
		SpanID  string `json:"span_id"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &line); err != nil {
		t.Fatalf("log output is not JSON: %v\n%s", err, buf.String())
	}
	if line.Msg != "request" || line.Level != "WARN" || line.Status != 404 {
		t.Errorf("log line = %+v, want WARN request status 404", line)
	}
	if line.TraceID == "" || line.SpanID == "" {
		t.Fatalf("log line missing trace/span IDs: %+v", line)
	}
	found := false
	for _, td := range getTraces(t, ts.URL) {
		if td.TraceID == line.TraceID {
			found = true
			if root, ok := td.Root(); !ok || root.SpanID != line.SpanID {
				t.Errorf("logged span_id %s is not the trace's root", line.SpanID)
			}
		}
	}
	if !found {
		t.Errorf("logged trace_id %s not present in /debug/traces", line.TraceID)
	}
}
