// Command simjoind serves similarity joins and neighbor queries over HTTP.
//
// Worker mode (the default) owns datasets in memory, uploaded (JSON or
// CSV) and queried by name:
//
//	simjoind -addr :8080 [-data dir] [-load name=path ...]
//
//	PUT    /datasets/{name}           {"points": [[…], …]}  (or text/csv body)
//	GET    /datasets                  list registered datasets
//	GET    /datasets/{name}           shape, live-engine state, WAL footprint
//	DELETE /datasets/{name}
//	POST   /datasets/{name}/points    {"points": [[…], …]}  append
//	POST   /datasets/{name}/selfjoin  {"eps":0.1,"metric":"L2","algorithm":"ekdb"}
//	POST   /datasets/{name}/range     {"point":[…],"radius":0.1}
//	POST   /datasets/{name}/knn       {"point":[…],"k":5}
//	POST   /datasets/{name}/watch     standing query: NDJSON delta stream (docs/LIVE.md)
//	POST   /join                      {"a":"x","b":"y","eps":0.1}
//	GET    /healthz                   liveness + dataset count
//	GET    /metrics                   Prometheus text: per-route counters + latency histograms
//	GET    /datasets/{name}/explain   ?eps=… EXPLAIN: resolved engine + size prediction, no execution
//	GET    /debug/vars                per-route request/error counters (legacy JSON)
//	GET    /debug/traces              recent request traces as span trees (?trace=<id>, ?limit=N)
//	GET    /debug/traces/{id}         one trace's spans merged (coordinator: stitched across the fleet)
//	GET    /debug/queries             per-query journal: estimate vs actual, timings, trace IDs
//
// -data <dir> makes the datasets durable: every PUT/append/DELETE tees
// through a snapshot+WAL storage engine (internal/store, see
// docs/STORE.md) and a restarted worker replays the directory back to
// its exact pre-crash state. -fsync picks the WAL sync policy (always /
// never / an interval), -compact-bytes the WAL size that triggers
// snapshot compaction, and -max-body-bytes the upload size cap.
//
// -debug additionally mounts net/http/pprof under /debug/pprof/ in
// either mode.
//
// Coordinator mode fronts a fleet of workers and serves the same API by
// scatter-gather, sharding each upload across the fleet with ε-boundary
// replication (see docs/CLUSTER.md):
//
//	simjoind -addr :8080 -workers http://w1:8081,http://w2:8082 [-margin 0.25]
//
// Gateway mode mounts the multi-tenant front door (internal/gateway,
// see docs/GATEWAY.md) over one coordinator or a flat worker fleet:
// API-key tenants with rate limits, fair queuing and estimate-priced
// shedding, plus A/B experiment routing with shadow traffic:
//
//	simjoind -addr :8080 -gateway -backends http://coord:8081 -tenants tenants.json
//
// The -tenants config hot-reloads on SIGHUP and whenever the file's
// mtime changes.
//
// -version prints the binary's build identity block (the /healthz
// "build" object) and exits.
//
// Every response is JSON; errors carry {"error": "…"} with a 4xx/5xx
// status. The server logs one structured JSON line per request to
// stderr (method, route, status, bytes, duration, trace_id) and shuts
// down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"simjoin"
	"simjoin/internal/cluster"
	"simjoin/internal/obsv/trace"
	"simjoin/internal/store"
)

// loadFlags collects repeated -load name=path arguments.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main minus the exit: every fatal path logs a structured error
// and returns a non-zero code instead of calling log.Fatal, so the
// daemon has exactly one exit point and tests could drive it.
func run(argv []string) int {
	fs := flag.NewFlagSet("simjoind", flag.ExitOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.String("workers", "", "comma-separated worker base URLs; enables coordinator mode")
		margin       = fs.Float64("margin", cluster.DefaultMargin, "coordinator: ε-boundary replication width for uploads (max exact self-join eps)")
		debug        = fs.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
		dataDir      = fs.String("data", "", "durable storage directory (worker mode); empty = in-memory only")
		fsyncFlag    = fs.String("fsync", "always", `WAL fsync policy: "always", "never", or an interval like "100ms"`)
		compactBytes = fs.Int64("compact-bytes", store.DefaultCompactBytes, "WAL size that triggers snapshot compaction (negative disables)")
		maxBody      = fs.Int64("max-body-bytes", defaultMaxBodyBytes, "largest accepted request body in bytes")
		maxPairs     = fs.Int64("max-pairs", 0, "admission budget: reject (429) or, on request, degrade join queries whose estimated result size exceeds this many pairs (0 = unlimited)")
		sketchOn     = fs.Bool("sketch", true, "maintain a resident join-size sketch per dataset for O(1) estimates (worker mode)")
		traceRing    = fs.Int("trace-ring", defaultTraceCapacity, "completed request traces retained for GET /debug/traces")
		gatewayMode  = fs.Bool("gateway", false, "gateway mode: multi-tenant front door over -backends (see docs/GATEWAY.md)")
		backends     = fs.String("backends", "", "comma-separated backend base URLs for -gateway (one coordinator or a flat worker fleet)")
		tenants      = fs.String("tenants", "", "gateway tenancy + experiment config (JSON); hot-reloaded on SIGHUP and file change")
		version      = fs.Bool("version", false, "print the build identity block (the /healthz build object) and exit")
		loads        loadFlags
	)
	fs.Var(&loads, "load", "preload a dataset: name=path (repeatable; worker mode only)")
	_ = fs.Parse(argv)

	if *version {
		out, err := json.MarshalIndent(buildVersion, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(string(out))
		return 0
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if *maxBody < 1 {
		logger.Error("-max-body-bytes must be positive", "value", *maxBody)
		return 2
	}
	if *traceRing < 1 {
		logger.Error("-trace-ring must be positive", "value", *traceRing)
		return 2
	}

	var h http.Handler
	// onStop runs at the start of graceful shutdown, before the HTTP
	// drain: it terminates long-lived watch streams with a terminal
	// NDJSON event so the drain isn't held open by standing queries.
	var onStop func()
	switch {
	case *gatewayMode:
		if *workers != "" {
			logger.Error("-gateway and -workers are mutually exclusive; point -backends at the coordinator instead")
			return 2
		}
		gh, gwStop, err := startGateway(logger, *backends, *tenants, *maxBody, *traceRing)
		if err != nil {
			logger.Error("starting gateway", "error", err)
			return 2
		}
		h = gh
		onStop = gwStop
		logger.Info("simjoind gatewaying", "addr", *addr, "tenants", *tenants)
	case *workers != "":
		if len(loads) > 0 {
			logger.Error("-load is not supported in coordinator mode; load data on the workers or upload through the coordinator")
			return 2
		}
		if *dataDir != "" {
			logger.Error("-data is not supported in coordinator mode; the coordinator is stateless — persist on the workers")
			return 2
		}
		urls, err := parseWorkers(*workers)
		if err != nil {
			logger.Error("parsing -workers", "error", err)
			return 2
		}
		cs := newCoordServer(cluster.New(urls, *margin, nil))
		cs.debug = *debug
		cs.log = logger
		cs.maxBody = *maxBody
		cs.maxPairs = *maxPairs
		cs.tracer = trace.New(*traceRing)
		h = cs.handler()
		onStop = cs.shutdownWatches
		logger.Info("simjoind coordinating", "workers", len(urls), "addr", *addr, "margin", *margin)
	default:
		srv := newServer()
		srv.debug = *debug
		srv.log = logger
		srv.maxBody = *maxBody
		srv.maxPairs = *maxPairs
		srv.tracer = trace.New(*traceRing)
		// Set before attachStore and -load run, so recovered and
		// preloaded datasets get sketches (or not) like uploaded ones.
		srv.sketch = *sketchOn
		if *dataDir != "" {
			mode, interval, err := store.ParseSync(*fsyncFlag)
			if err != nil {
				logger.Error("parsing -fsync", "error", err)
				return 2
			}
			cat, err := store.Open(*dataDir, store.Options{
				Sync:         mode,
				SyncInterval: interval,
				CompactBytes: *compactBytes,
				Hooks:        storeHooks(srv.m),
			})
			if err != nil {
				logger.Error("opening data directory", "dir", *dataDir, "error", err)
				return 1
			}
			defer cat.Close()
			srv.attachStore(cat)
			logRecovery(logger, *dataDir, cat.Recovery())
		}
		for _, spec := range loads {
			name, path, ok := strings.Cut(spec, "=")
			if !ok {
				logger.Error("bad -load flag: want name=path", "flag", spec)
				return 2
			}
			ds, err := simjoin.Load(path)
			if err != nil {
				logger.Error("loading dataset", "path", path, "error", err)
				return 1
			}
			if srv.st != nil {
				if err := srv.st.Put(context.Background(), name, ds.Internal()); err != nil {
					logger.Error("persisting preloaded dataset", "name", name, "error", err)
					return 1
				}
			}
			srv.sets[name] = srv.newEntry(ds)
			logger.Info("loaded dataset", "name", name, "points", ds.Len(), "dims", ds.Dims())
		}
		h = srv.handler()
		onStop = srv.live.Shutdown
		logger.Info("simjoind listening", "addr", *addr, "data", *dataDir)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, *addr, h, onStop); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("server failed", "error", err)
		return 1
	}
	return 0
}

// parseWorkers splits the -workers list into normalized base URLs.
func parseWorkers(s string) ([]string, error) {
	var out []string
	for _, w := range strings.Split(s, ",") {
		w = strings.TrimSuffix(strings.TrimSpace(w), "/")
		if w == "" {
			continue
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers lists no URLs")
	}
	return out, nil
}

// serve runs a hardened http.Server until ctx is cancelled (SIGINT or
// SIGTERM), then drains in-flight requests before returning. onStop,
// when non-nil, runs first so long-lived streams (standing-query
// watches) terminate cleanly instead of blocking the drain.
func serve(ctx context.Context, addr string, h http.Handler, onStop func()) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		if onStop != nil {
			onStop()
		}
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	}
}
