// Command simjoind serves similarity joins and neighbor queries over HTTP.
//
// Worker mode (the default) owns datasets in memory, uploaded (JSON or
// CSV) and queried by name:
//
//	simjoind -addr :8080 [-load name=path ...]
//
//	PUT    /datasets/{name}           {"points": [[…], …]}  (or text/csv body)
//	GET    /datasets                  list registered datasets
//	DELETE /datasets/{name}
//	POST   /datasets/{name}/points    {"points": [[…], …]}  append
//	POST   /datasets/{name}/selfjoin  {"eps":0.1,"metric":"L2","algorithm":"ekdb"}
//	POST   /datasets/{name}/range     {"point":[…],"radius":0.1}
//	POST   /datasets/{name}/knn       {"point":[…],"k":5}
//	POST   /join                      {"a":"x","b":"y","eps":0.1}
//	GET    /healthz                   liveness + dataset count
//	GET    /metrics                   Prometheus text: per-route counters + latency histograms
//	GET    /debug/vars                per-route request/error counters (legacy JSON)
//
// -debug additionally mounts net/http/pprof under /debug/pprof/ in
// either mode.
//
// Coordinator mode fronts a fleet of workers and serves the same API by
// scatter-gather, sharding each upload across the fleet with ε-boundary
// replication (see docs/CLUSTER.md):
//
//	simjoind -addr :8080 -workers http://w1:8081,http://w2:8082 [-margin 0.25]
//
// Every response is JSON; errors carry {"error": "…"} with a 4xx/5xx
// status. The server shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"simjoin"
	"simjoin/internal/cluster"
)

// loadFlags collects repeated -load name=path arguments.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.String("workers", "", "comma-separated worker base URLs; enables coordinator mode")
		margin  = flag.Float64("margin", cluster.DefaultMargin, "coordinator: ε-boundary replication width for uploads (max exact self-join eps)")
		debug   = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
		loads   loadFlags
	)
	flag.Var(&loads, "load", "preload a dataset: name=path (repeatable; worker mode only)")
	flag.Parse()

	var h http.Handler
	if *workers != "" {
		if len(loads) > 0 {
			log.Fatal("simjoind: -load is not supported in coordinator mode; load data on the workers or upload through the coordinator")
		}
		urls := parseWorkers(*workers)
		cs := newCoordServer(cluster.New(urls, *margin, nil))
		cs.debug = *debug
		h = cs.handler()
		fmt.Printf("simjoind coordinating %d workers on %s (margin %g)\n", len(urls), *addr, *margin)
	} else {
		srv := newServer()
		srv.debug = *debug
		for _, spec := range loads {
			name, path, ok := strings.Cut(spec, "=")
			if !ok {
				log.Fatalf("simjoind: -load %q: want name=path", spec)
			}
			ds, err := simjoin.Load(path)
			if err != nil {
				log.Fatalf("simjoind: loading %s: %v", path, err)
			}
			srv.sets[name] = &entry{ds: ds}
			fmt.Printf("loaded %s: %d points × %d dims\n", name, ds.Len(), ds.Dims())
		}
		h = srv.handler()
		fmt.Printf("simjoind listening on %s\n", *addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, *addr, h); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("simjoind: %v", err)
	}
}

// parseWorkers splits the -workers list into normalized base URLs.
func parseWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		w = strings.TrimSuffix(strings.TrimSpace(w), "/")
		if w == "" {
			continue
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		log.Fatal("simjoind: -workers lists no URLs")
	}
	return out
}

// serve runs a hardened http.Server until ctx is cancelled (SIGINT or
// SIGTERM), then drains in-flight requests before returning.
func serve(ctx context.Context, addr string, h http.Handler) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	}
}
