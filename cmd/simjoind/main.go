// Command simjoind serves similarity joins and neighbor queries over HTTP.
// Datasets are uploaded (JSON or CSV) and queried by name:
//
//	simjoind -addr :8080 [-load name=path ...]
//
//	PUT    /datasets/{name}           {"points": [[…], …]}  (or text/csv body)
//	GET    /datasets                  list registered datasets
//	DELETE /datasets/{name}
//	POST   /datasets/{name}/selfjoin  {"eps":0.1,"metric":"L2","algorithm":"ekdb"}
//	POST   /datasets/{name}/range     {"point":[…],"radius":0.1}
//	POST   /datasets/{name}/knn       {"point":[…],"k":5}
//	POST   /join                      {"a":"x","b":"y","eps":0.1}
//
// Every response is JSON; errors carry {"error": "…"} with a 4xx status.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"simjoin"
)

// loadFlags collects repeated -load name=path arguments.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		loads loadFlags
	)
	flag.Var(&loads, "load", "preload a dataset: name=path (repeatable)")
	flag.Parse()

	srv := newServer()
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("simjoind: -load %q: want name=path", spec)
		}
		ds, err := simjoin.Load(path)
		if err != nil {
			log.Fatalf("simjoind: loading %s: %v", path, err)
		}
		srv.sets[name] = &entry{ds: ds}
		fmt.Printf("loaded %s: %d points × %d dims\n", name, ds.Len(), ds.Dims())
	}
	fmt.Printf("simjoind listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.handler()))
}
