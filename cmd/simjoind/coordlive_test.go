package main

import (
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"simjoin/internal/cluster"
	"simjoin/internal/rclient"
	"simjoin/internal/store"
)

// liveWorker is a real worker on a fixed listener with a durable store,
// so tests can hard-kill it and bring it back on the same address — the
// cluster-mode analogue of the single-node restart tests.
type liveWorker struct {
	t    *testing.T
	dir  string
	addr string
	ts   *httptest.Server
}

func (w *liveWorker) start(addr string) {
	w.t.Helper()
	srv := newServer()
	cat, err := store.Open(w.dir, store.Options{Sync: store.SyncAlways, Hooks: storeHooks(srv.m)})
	if err != nil {
		w.t.Fatalf("store.Open(%s): %v", w.dir, err)
	}
	srv.attachStore(cat)
	var l net.Listener
	for i := 0; ; i++ {
		if l, err = net.Listen("tcp", addr); err == nil {
			break
		}
		// The previous incarnation's port can linger briefly after a kill.
		if i > 200 {
			w.t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	w.ts = &httptest.Server{Listener: l, Config: &http.Server{Handler: srv.handler()}}
	w.ts.Start()
	w.addr = l.Addr().String()
}

// kill severs every open connection and stops the listener without
// closing the store catalog — a crash, from the data's point of view.
func (w *liveWorker) kill() {
	w.ts.CloseClientConnections()
	w.ts.Close()
}

// restart recovers the worker from its WAL on the original address.
func (w *liveWorker) restart() {
	w.start(w.addr)
	w.t.Cleanup(w.ts.Close)
}

// startLiveCluster boots n durable restartable workers and a coordinator
// over them, returning the coordinator server object as well so tests
// can drive its shutdown path directly.
func startLiveCluster(t *testing.T, n int, margin float64) (*httptest.Server, *coordServer, []*liveWorker) {
	t.Helper()
	workers := make([]*liveWorker, n)
	urls := make([]string, n)
	for i := range workers {
		w := &liveWorker{t: t, dir: t.TempDir()}
		w.start("127.0.0.1:0")
		t.Cleanup(func() { w.ts.Close() })
		workers[i] = w
		urls[i] = w.ts.URL
	}
	rc := &rclient.Client{
		MaxRetries:     2,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       10 * time.Millisecond,
		AttemptTimeout: 10 * time.Second,
		RetryPOST:      true,
	}
	cs := newCoordServer(cluster.New(urls, margin, rc))
	coord := httptest.NewServer(cs.handler())
	t.Cleanup(coord.Close)
	return coord, cs, workers
}

// collectDistinct consumes stream events until got holds at least n
// distinct pairs. Premature end events and stream errors fail the test;
// a missing pair shows up as the next() timeout.
func (ws *watchStream) collectDistinct(got map[[2]int]int, n int) {
	ws.t.Helper()
	for len(got) < n {
		ev := ws.next()
		switch {
		case ev.err != nil:
			ws.t.Fatalf("watch stream broke: %v", ev.err)
		case ev.pair != nil:
			got[*ev.pair]++
		case ev.obj["event"] == "end":
			ws.t.Fatalf("watch ended early: %v", ev.obj)
		}
	}
}

// waitWorkerSubs polls worker metadata until every worker holding name
// reports a live subscription — i.e. the coordinator's per-shard watch
// streams are established and no subsequent append can be missed.
func waitWorkerSubs(t *testing.T, workerURLs []string, name string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := true
		for _, wu := range workerURLs {
			resp, body := doJSON(t, http.MethodGet, wu+"/datasets/"+name, nil)
			if resp.StatusCode == http.StatusNotFound {
				continue
			}
			lv, _ := body["live"].(map[string]any)
			if subs, _ := lv["subscriptions"].(float64); subs < 1 {
				ready = false
			}
		}
		if ready {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator watch streams never reached the workers")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCoordWatchFromStartMatchesOracle is the coordinator-mode
// acceptance path: a full-replay standing query over real workers must
// deliver, across catch-up and live appends, exactly the brute-force
// pair set of the final dataset in global upload order.
func TestCoordWatchFromStartMatchesOracle(t *testing.T) {
	const eps = 0.15
	coord, workers := startCluster(t, 3, 0.35)
	_ = workers
	pts := livePoints(120, 4, 50)
	putPoints(t, coord.URL, "d", pts)

	ws := openWatch(t, coord.URL, "d", map[string]any{"eps": eps, "after": 0}, 0)
	defer ws.close()
	hello := ws.hello()
	if seq, _ := hello["seq"].(float64); int(seq) != 120 {
		t.Fatalf("hello seq = %v, want 120", hello["seq"])
	}
	got := make(map[[2]int]int)
	ws.collectDistinct(got, len(oraclePairs(pts, eps)))

	batch := livePoints(60, 4, 51)
	pts = append(pts, batch...)
	appendPointsHTTP(t, coord.URL, "d", batch)
	want := oraclePairs(pts, eps)
	if len(want) == 0 {
		t.Fatal("oracle found no pairs — test parameters are vacuous")
	}
	ws.collectDistinct(got, len(want))
	checkPairSet(t, got, want, false)

	// Coordinator metadata: global shape plus the standing-query tally.
	resp, meta := doJSON(t, http.MethodGet, coord.URL+"/datasets/d", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET dataset: %d %v", resp.StatusCode, meta)
	}
	if n, _ := meta["len"].(float64); int(n) != len(pts) {
		t.Fatalf("metadata len = %v, want %d", meta["len"], len(pts))
	}
	if stored, _ := meta["stored"].(float64); int(stored) < len(pts) {
		t.Fatalf("metadata stored = %v, want >= %d (margin replication)", meta["stored"], len(pts))
	}
	if wn, _ := meta["watches"].(float64); int(wn) != 1 {
		t.Fatalf("metadata watches = %v, want 1", meta["watches"])
	}

	// DELETE through the coordinator ends the stream with a terminal
	// event, same contract as a worker.
	req, _ := http.NewRequest(http.MethodDelete, coord.URL+"/datasets/d", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if reason := ws.waitEnd(); reason != "dataset deleted" {
		t.Fatalf("end reason = %q, want %q", reason, "dataset deleted")
	}
}

// TestCoordWatchLiveOnlyNewPairs subscribes without a cursor: only
// pairs created by appends after the per-shard streams are up may
// arrive, and all of them must.
func TestCoordWatchLiveOnlyNewPairs(t *testing.T) {
	const eps = 0.15
	coord, workers := startCluster(t, 2, 0.35)
	pts := livePoints(100, 4, 60)
	putPoints(t, coord.URL, "d", pts)
	base := oraclePairs(pts, eps)

	ws := openWatch(t, coord.URL, "d", map[string]any{"eps": eps}, 0)
	defer ws.close()
	ws.hello()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.URL
	}
	waitWorkerSubs(t, urls, "d")

	batch := livePoints(50, 4, 61)
	pts = append(pts, batch...)
	appendPointsHTTP(t, coord.URL, "d", batch)

	want := make(map[[2]int]bool)
	for p := range oraclePairs(pts, eps) {
		if !base[p] {
			want[p] = true
		}
	}
	if len(want) == 0 {
		t.Fatal("append created no new pairs — test parameters are vacuous")
	}
	got := make(map[[2]int]int)
	ws.collectDistinct(got, len(want))
	checkPairSet(t, got, want, false)
}

// TestCoordWatchAcrossWorkerRestart is the durability acceptance test in
// coordinator mode: hard-kill a worker under a standing query, bring it
// back on the same address from its WAL, and the watcher's union must
// still converge to the brute-force oracle over the final dataset.
func TestCoordWatchAcrossWorkerRestart(t *testing.T) {
	const eps = 0.15
	coord, _, workers := startLiveCluster(t, 2, 0.35)
	pts := livePoints(80, 4, 70)
	putPoints(t, coord.URL, "d", pts)

	ws := openWatch(t, coord.URL, "d", map[string]any{"eps": eps, "after": 0}, 0)
	defer ws.close()
	ws.hello()
	got := make(map[[2]int]int)
	ws.collectDistinct(got, len(oraclePairs(pts, eps)))

	batch := livePoints(40, 4, 71)
	pts = append(pts, batch...)
	appendPointsHTTP(t, coord.URL, "d", batch)
	ws.collectDistinct(got, len(oraclePairs(pts, eps)))

	// Crash worker 0 mid-watch; the coordinator's shard stream starts
	// its reconnect loop. Recovery replays the WAL, so the resumed
	// stream picks up from the coordinator's acknowledged cursor.
	workers[0].kill()
	workers[0].restart()

	tail := livePoints(30, 4, 72)
	pts = append(pts, tail...)
	appendPointsHTTP(t, coord.URL, "d", tail)

	want := oraclePairs(pts, eps)
	ws.collectDistinct(got, len(want))
	// Reconnect replays any batch that was in flight at the kill, so
	// delivery is at-least-once here.
	checkPairSet(t, got, want, true)

	resp, meta := doJSON(t, http.MethodGet, coord.URL+"/datasets/d", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET dataset after restart: %d %v", resp.StatusCode, meta)
	}
	if n, _ := meta["len"].(float64); int(n) != len(pts) {
		t.Fatalf("metadata len = %v, want %d", meta["len"], len(pts))
	}
}

// TestCoordWatchShutdown drains standing queries with a terminal event
// when the coordinator shuts down, instead of hanging up on them.
func TestCoordWatchShutdown(t *testing.T) {
	coord, cs, _ := startLiveCluster(t, 2, 0.35)
	putPoints(t, coord.URL, "d", livePoints(40, 3, 80))

	ws := openWatch(t, coord.URL, "d", map[string]any{"eps": 0.1}, 0)
	defer ws.close()
	ws.hello()
	cs.shutdownWatches()
	if reason := ws.waitEnd(); reason != "server shutting down" {
		t.Fatalf("end reason = %q, want %q", reason, "server shutting down")
	}
}

// TestCoordWatchValidation covers the coordinator watch endpoint's
// rejection paths, including the coordinator-specific cursor and
// two-set restrictions.
func TestCoordWatchValidation(t *testing.T) {
	coord, _ := startCluster(t, 2, 0.2)
	putPoints(t, coord.URL, "d", clusterPoints(40, 2, 90))

	openWatch(t, coord.URL, "missing", map[string]any{"eps": 0.1}, http.StatusNotFound)
	openWatch(t, coord.URL, "d", map[string]any{"eps": 0.0}, http.StatusBadRequest)
	openWatch(t, coord.URL, "d", map[string]any{"eps": 0.9}, http.StatusBadRequest) // beyond margin
	openWatch(t, coord.URL, "d", map[string]any{"eps": 0.1, "metric": "cosine"}, http.StatusBadRequest)
	openWatch(t, coord.URL, "d", map[string]any{"eps": 0.1, "after": 5}, http.StatusBadRequest)
	openWatch(t, coord.URL, "d", map[string]any{"eps": 0.1, "other": "d"}, http.StatusNotImplemented)
}

// TestCoordAppendThenSelfJoinMatchesOracle checks the append path end to
// end through real workers: after two appends, a distributed self-join
// over the grown dataset equals brute force.
func TestCoordAppendThenSelfJoinMatchesOracle(t *testing.T) {
	const eps = 0.2
	coord, _ := startCluster(t, 3, 0.35)
	pts := livePoints(100, 4, 95)
	putPoints(t, coord.URL, "d", pts)
	for _, n := range []int{50, 30} {
		batch := livePoints(n, 4, int64(100+n))
		pts = append(pts, batch...)
		appendPointsHTTP(t, coord.URL, "d", batch)
	}

	got := selfJoinPairs(t, coord.URL, "d", eps)
	want := oraclePairs(pts, eps)
	if len(want) == 0 {
		t.Fatal("oracle found no pairs — test parameters are vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("selfjoin after appends = %d pairs, oracle = %d", len(got), len(want))
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("selfjoin returned pair %v not in the oracle set", p)
		}
	}
}
