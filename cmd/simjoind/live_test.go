package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"testing"
	"time"

	"simjoin/internal/store"
)

// watchStream is a test client for the NDJSON watch endpoint: a reader
// goroutine parses the stream into a channel so tests can consume
// events with timeouts instead of blocking reads.
type watchStream struct {
	t    *testing.T
	resp *http.Response
	ch   chan watchStreamEvent
}

type watchStreamEvent struct {
	pair *[2]int
	obj  map[string]any
	err  error
}

// openWatch posts a watch request and fails the test unless the stream
// opens. wantStatus != 0 instead asserts a non-200 rejection and
// returns nil.
func openWatch(t *testing.T, base, name string, body map[string]any, wantStatus int) *watchStream {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/datasets/"+name+"/watch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if wantStatus != 0 {
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("watch %s: status %d, want %d", name, resp.StatusCode, wantStatus)
		}
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		t.Fatalf("watch %s: status %d: %s", name, resp.StatusCode, msg)
	}
	ws := &watchStream{t: t, resp: resp, ch: make(chan watchStreamEvent, 1<<15)}
	t.Cleanup(ws.close)
	go ws.readLoop()
	return ws
}

// close severs the stream client-side. Tests must close streams before
// their httptest server: Close waits for active connections, and a
// standing query holds its connection open by design.
func (ws *watchStream) close() { ws.resp.Body.Close() }

func (ws *watchStream) readLoop() {
	dec := json.NewDecoder(ws.resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			ws.ch <- watchStreamEvent{err: err}
			return
		}
		if len(raw) > 0 && raw[0] == '[' {
			var p [2]int
			if err := json.Unmarshal(raw, &p); err != nil {
				ws.ch <- watchStreamEvent{err: err}
				return
			}
			ws.ch <- watchStreamEvent{pair: &p}
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			ws.ch <- watchStreamEvent{err: err}
			return
		}
		ws.ch <- watchStreamEvent{obj: m}
	}
}

func (ws *watchStream) next() watchStreamEvent {
	ws.t.Helper()
	select {
	case ev := <-ws.ch:
		return ev
	case <-time.After(15 * time.Second):
		ws.t.Fatal("timed out waiting for a watch event")
		return watchStreamEvent{}
	}
}

// hello reads the stream's opening event and returns it.
func (ws *watchStream) hello() map[string]any {
	ws.t.Helper()
	ev := ws.next()
	if ev.err != nil || ev.obj == nil || ev.obj["event"] != "hello" {
		ws.t.Fatalf("first watch event = %+v, want hello", ev)
	}
	return ev.obj
}

// collectUntil accumulates pair lines into got until a batch marker
// satisfies stop; it returns that marker.
func (ws *watchStream) collectUntil(got map[[2]int]int, stop func(batch map[string]any) bool) map[string]any {
	ws.t.Helper()
	for {
		ev := ws.next()
		switch {
		case ev.err != nil:
			ws.t.Fatalf("watch stream broke: %v", ev.err)
		case ev.pair != nil:
			got[*ev.pair]++
		case ev.obj["event"] == "batch":
			if stop(ev.obj) {
				return ev.obj
			}
		case ev.obj["event"] == "end":
			ws.t.Fatalf("watch ended early: %v", ev.obj)
		}
	}
}

// collectUntilSeq collects pairs until the batch cursor reaches seq.
func (ws *watchStream) collectUntilSeq(got map[[2]int]int, seq int) {
	ws.t.Helper()
	ws.collectUntil(got, func(b map[string]any) bool {
		n, _ := b["seq"].(float64)
		return int(n) >= seq
	})
}

// waitEnd reads (discarding pairs) until the terminal event and returns
// its reason.
func (ws *watchStream) waitEnd() string {
	ws.t.Helper()
	for {
		ev := ws.next()
		if ev.err != nil {
			ws.t.Fatalf("watch stream broke before end event: %v", ev.err)
		}
		if ev.obj != nil && ev.obj["event"] == "end" {
			reason, _ := ev.obj["reason"].(string)
			return reason
		}
	}
}

// livePoints makes clustered points so small eps values still produce
// pairs.
func livePoints(n, dims int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, 6)
	for i := range centers {
		c := make([]float64, dims)
		for d := range c {
			c[d] = rng.Float64()
		}
		centers[i] = c
	}
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[rng.Intn(len(centers))]
		p := make([]float64, dims)
		for d := range p {
			p[d] = c[d] + (rng.Float64()-0.5)*0.2
		}
		pts[i] = p
	}
	return pts
}

func liveL2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// oraclePairs is the brute-force self-join pair set.
func oraclePairs(pts [][]float64, eps float64) map[[2]int]bool {
	out := make(map[[2]int]bool)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if liveL2(pts[i], pts[j]) <= eps {
				out[[2]int{i, j}] = true
			}
		}
	}
	return out
}

// oracleCross is the brute-force two-set pair set (a-index, b-index).
func oracleCross(a, b [][]float64, eps float64) map[[2]int]bool {
	out := make(map[[2]int]bool)
	for i := range a {
		for j := range b {
			if liveL2(a[i], b[j]) <= eps {
				out[[2]int{i, j}] = true
			}
		}
	}
	return out
}

// checkPairSet asserts got's key set equals want. dupOK allows
// at-least-once delivery; otherwise any pair seen twice fails.
func checkPairSet(t *testing.T, got map[[2]int]int, want map[[2]int]bool, dupOK bool) {
	t.Helper()
	for p := range want {
		if got[p] == 0 {
			t.Fatalf("pair %v never delivered (got %d of %d)", p, len(got), len(want))
		}
	}
	for p, n := range got {
		if !want[p] {
			t.Fatalf("pair %v delivered but not in the oracle set", p)
		}
		if !dupOK && n > 1 {
			t.Fatalf("pair %v delivered %d times", p, n)
		}
	}
}

func appendPointsHTTP(t *testing.T, base, name string, pts [][]float64) {
	t.Helper()
	resp, body := doJSON(t, http.MethodPost, base+"/datasets/"+name+"/points", map[string]any{"points": pts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append %s: %d %v", name, resp.StatusCode, body)
	}
}

// TestWatchSelfJoinLive is the worker-mode acceptance path: a standing
// self-join registered before any append receives, batch by batch,
// exactly the pairs each append creates.
func TestWatchSelfJoinLive(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	const eps = 0.15
	pts := livePoints(100, 4, 1)
	putPoints(t, ts.URL, "d", pts)

	ws := openWatch(t, ts.URL, "d", map[string]any{"eps": eps}, 0)
	defer ws.close()
	hello := ws.hello()
	if seq, _ := hello["seq"].(float64); int(seq) != 100 {
		t.Fatalf("hello seq = %v, want 100", hello["seq"])
	}

	got := make(map[[2]int]int)
	for len(pts) < 160 {
		batch := livePoints(30, 4, int64(len(pts)))
		pts = append(pts, batch...)
		appendPointsHTTP(t, ts.URL, "d", batch)
		ws.collectUntilSeq(got, len(pts))
	}
	base := oraclePairs(pts[:100], eps)
	want := make(map[[2]int]bool)
	for p := range oraclePairs(pts, eps) {
		if !base[p] {
			want[p] = true
		}
	}
	checkPairSet(t, got, want, false)

	// GET /datasets/{name} reflects the grown dataset and the watcher.
	resp, meta := doJSON(t, http.MethodGet, ts.URL+"/datasets/d", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET dataset: %d %v", resp.StatusCode, meta)
	}
	if n, _ := meta["len"].(float64); int(n) != len(pts) {
		t.Fatalf("metadata len = %v, want %d", meta["len"], len(pts))
	}
	live, _ := meta["live"].(map[string]any)
	if subs, _ := live["subscriptions"].(float64); int(subs) != 1 {
		t.Fatalf("metadata live = %v, want 1 subscription", meta["live"])
	}

	// DELETE terminates the stream with a terminal event, not a hangup.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/datasets/d", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if reason := ws.waitEnd(); reason != "dataset deleted" {
		t.Fatalf("end reason = %q, want %q", reason, "dataset deleted")
	}
}

// TestWatchTwoSetLive registers a standing two-set join and appends to
// both sides: the union of delivered pairs must be every cross pair
// involving at least one appended point.
func TestWatchTwoSetLive(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	const eps = 0.18
	a := livePoints(50, 3, 10)
	b := livePoints(50, 3, 11)
	putPoints(t, ts.URL, "a", a)
	putPoints(t, ts.URL, "b", b)

	ws := openWatch(t, ts.URL, "a", map[string]any{"eps": eps, "other": "b"}, 0)
	defer ws.close()
	hello := ws.hello()
	if so, _ := hello["seq_other"].(float64); int(so) != 50 {
		t.Fatalf("hello seq_other = %v, want 50", hello["seq_other"])
	}

	baseCross := oracleCross(a, b, eps)
	got := make(map[[2]int]int)
	aAdd := livePoints(25, 3, 12)
	a = append(a, aAdd...)
	appendPointsHTTP(t, ts.URL, "a", aAdd)
	ws.collectUntil(got, func(bt map[string]any) bool {
		n, _ := bt["seq"].(float64)
		return int(n) >= 75
	})
	bAdd := livePoints(25, 3, 13)
	b = append(b, bAdd...)
	appendPointsHTTP(t, ts.URL, "b", bAdd)
	ws.collectUntil(got, func(bt map[string]any) bool {
		n, _ := bt["seq_other"].(float64)
		return int(n) >= 75
	})

	want := make(map[[2]int]bool)
	for p := range oracleCross(a, b, eps) {
		if !baseCross[p] {
			want[p] = true
		}
	}
	checkPairSet(t, got, want, false)
}

// TestWatchCatchUpAcrossRestart is the durability acceptance test: a
// watcher's cursor survives a hard worker kill because catch-up replays
// from the WAL-recovered dataset. The union of everything both watch
// sessions delivered must equal the oracle over the final dataset.
func TestWatchCatchUpAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const eps = 0.15
	ts, _ := newPersistentServer(t, dir, store.Options{Sync: store.SyncAlways})
	pts := livePoints(80, 4, 20)
	putPoints(t, ts.URL, "d", pts)

	// Full replay from the start, then one live batch.
	ws := openWatch(t, ts.URL, "d", map[string]any{"eps": eps, "after": 0}, 0)
	ws.hello()
	got := make(map[[2]int]int)
	ws.collectUntilSeq(got, 80)
	batch := livePoints(40, 4, 21)
	pts = append(pts, batch...)
	appendPointsHTTP(t, ts.URL, "d", batch)
	ws.collectUntilSeq(got, 120)
	lastSeq := 120

	// Hard kill: sever every connection (the watch stream dies without
	// a terminal event) and abandon the catalog mid-flight.
	ts.CloseClientConnections()
	ts.Close()

	// Recover, append while nobody is watching, then resume from the
	// acknowledged cursor: catch-up must cover the missed batch.
	ts2, _ := newPersistentServer(t, dir, store.Options{Sync: store.SyncAlways})
	missed := livePoints(40, 4, 22)
	pts = append(pts, missed...)
	appendPointsHTTP(t, ts2.URL, "d", missed)

	ws2 := openWatch(t, ts2.URL, "d", map[string]any{"eps": eps, "after": lastSeq}, 0)
	ws2.hello()
	ws2.collectUntilSeq(got, 160)

	// And one more live batch on the recovered worker.
	tail := livePoints(20, 4, 23)
	pts = append(pts, tail...)
	appendPointsHTTP(t, ts2.URL, "d", tail)
	ws2.collectUntilSeq(got, 180)

	checkPairSet(t, got, oraclePairs(pts, eps), true)

	// The recovered worker reports its WAL footprint in the metadata.
	resp, meta := doJSON(t, http.MethodGet, ts2.URL+"/datasets/d", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET dataset: %d %v", resp.StatusCode, meta)
	}
	if wb, _ := meta["wal_bytes"].(float64); wb <= 0 {
		t.Fatalf("metadata wal_bytes = %v, want > 0", meta["wal_bytes"])
	}
}

// TestWatchReplaceAndValidation covers the PUT-replace terminal event
// and the watch endpoint's rejection paths.
func TestWatchReplaceAndValidation(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "d", livePoints(30, 3, 30))

	ws := openWatch(t, ts.URL, "d", map[string]any{"eps": 0.1}, 0)
	defer ws.close()
	ws.hello()
	putPoints(t, ts.URL, "d", livePoints(30, 3, 31))
	if reason := ws.waitEnd(); reason != "dataset replaced" {
		t.Fatalf("end reason = %q, want %q", reason, "dataset replaced")
	}

	openWatch(t, ts.URL, "missing", map[string]any{"eps": 0.1}, http.StatusNotFound)
	openWatch(t, ts.URL, "d", map[string]any{"eps": 0.0}, http.StatusBadRequest)
	openWatch(t, ts.URL, "d", map[string]any{"eps": 0.1, "metric": "cosine"}, http.StatusBadRequest)
	openWatch(t, ts.URL, "d", map[string]any{"eps": 0.1, "after": 999}, http.StatusBadRequest)
	openWatch(t, ts.URL, "d", map[string]any{"eps": 0.1, "other": "missing"}, http.StatusNotFound)
}

// TestWatchMetricOrdering sanity-checks that delivered pairs are sorted
// i < j and batch markers carry the running cursor.
func TestWatchPairsAreOrdered(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "d", livePoints(60, 3, 40))
	ws := openWatch(t, ts.URL, "d", map[string]any{"eps": 0.2, "after": 0}, 0)
	defer ws.close()
	ws.hello()
	got := make(map[[2]int]int)
	ws.collectUntilSeq(got, 60)
	pairs := make([][2]int, 0, len(got))
	for p := range got {
		if p[0] >= p[1] {
			t.Fatalf("pair %v is not i < j", p)
		}
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a][0] < pairs[b][0] })
	if len(pairs) == 0 {
		t.Fatal("replay delivered no pairs")
	}
}
