package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"testing"

	"simjoin"
)

// postNDJSON posts a JSON body and decodes an NDJSON answer: pair lines
// first, one closing summary object last.
func postNDJSON(t *testing.T, url string, body any) (pairs [][2]int, summary map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if summary != nil {
			t.Fatalf("line after summary: %s", line)
		}
		if line[0] == '[' {
			var p [2]int
			if err := json.Unmarshal(line, &p); err != nil {
				t.Fatalf("bad pair line %q: %v", line, err)
			}
			pairs = append(pairs, p)
			continue
		}
		if err := json.Unmarshal(line, &summary); err != nil {
			t.Fatalf("bad summary line %q: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if summary == nil {
		t.Fatal("stream ended without a summary line")
	}
	return pairs, summary
}

func sortPairs2(ps [][2]int) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a][0] != ps[b][0] {
			return ps[a][0] < ps[b][0]
		}
		return ps[a][1] < ps[b][1]
	})
}

// TestSelfJoinStream checks the worker's NDJSON self-join: same pairs as
// the buffered answer, delivered line by line with a closing summary.
func TestSelfJoinStream(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {0.05, 0}, {0.5, 0.5}, {0.52, 0.5}, {0.9, 0.9}})

	_, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/selfjoin", map[string]any{"eps": 0.1})
	want := pairsOf(t, body)

	got, summary := postNDJSON(t, ts.URL+"/datasets/a/selfjoin", map[string]any{"eps": 0.1, "stream": true})
	sortPairs2(got)
	if len(got) != len(want) {
		t.Fatalf("streamed %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
	if summary["total"].(float64) != float64(len(want)) || summary["truncated"] != false {
		t.Fatalf("summary = %v", summary)
	}
	if _, ok := summary["elapsed_ms"]; !ok {
		t.Fatalf("summary missing elapsed_ms: %v", summary)
	}

	// max_pairs caps the stream and marks the summary truncated.
	got, summary = postNDJSON(t, ts.URL+"/datasets/a/selfjoin", map[string]any{"eps": 0.1, "stream": true, "max_pairs": 1})
	if len(got) != 1 || summary["truncated"] != true {
		t.Fatalf("truncated stream: %d pairs, summary %v", len(got), summary)
	}
}

// TestSelfJoinStreamParallel runs the streaming route with Workers>1 over
// a workload big enough to exercise the funnel, against the buffered
// serial answer.
func TestSelfJoinStreamParallel(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "big", clusterPoints(500, 4, 77))

	_, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/big/selfjoin", map[string]any{"eps": 0.25})
	want := pairsOf(t, body)
	if len(want) == 0 {
		t.Fatal("degenerate workload")
	}
	got, summary := postNDJSON(t, ts.URL+"/datasets/big/selfjoin",
		map[string]any{"eps": 0.25, "stream": true, "workers": 4})
	sortPairs2(got)
	if len(got) != len(want) {
		t.Fatalf("streamed %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
	if summary["total"].(float64) != float64(len(want)) {
		t.Fatalf("summary total = %v, want %d", summary["total"], len(want))
	}
}

// TestTwoSetJoinStream checks the /join route's NDJSON variant.
func TestTwoSetJoinStream(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {5, 5}})
	putPoints(t, ts.URL, "b", [][]float64{{0.05, 0}, {9, 9}})
	got, summary := postNDJSON(t, ts.URL+"/join",
		map[string]any{"a": "a", "b": "b", "eps": 0.1, "stream": true})
	if len(got) != 1 || got[0] != [2]int{0, 0} {
		t.Fatalf("pairs = %v", got)
	}
	if summary["total"].(float64) != 1 {
		t.Fatalf("summary = %v", summary)
	}
}

// TestStreamValidationStillErrors: a streaming request that fails
// validation must answer a plain JSON error, not an empty stream.
func TestStreamValidationStillErrors(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {1, 1}})
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/selfjoin",
		map[string]any{"eps": -1, "stream": true})
	if resp.StatusCode != http.StatusBadRequest || body["error"] == nil {
		t.Fatalf("bad-eps stream: %d %v", resp.StatusCode, body)
	}
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/datasets/missing/selfjoin",
		map[string]any{"eps": 0.1, "stream": true})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing dataset stream: %d %v", resp.StatusCode, body)
	}
}

// TestClusterSelfJoinStream is the distributed end of the streaming path:
// the coordinator's NDJSON answer over real workers must carry exactly
// the single-node pair set, plus the cluster fields in its summary.
func TestClusterSelfJoinStream(t *testing.T) {
	const (
		n, dims = 400, 5
		eps     = 0.25
		margin  = 0.3
	)
	coord, _ := startCluster(t, 3, margin)
	pts := clusterPoints(n, dims, 404)
	putPoints(t, coord.URL, "d", pts)

	res, err := simjoin.SelfJoin(simjoin.FromPoints(pts), simjoin.Options{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][2]int, len(res.Pairs))
	for i, p := range res.Pairs {
		want[i] = [2]int{p.I, p.J}
	}
	sortPairs2(want)
	if len(want) == 0 {
		t.Fatal("degenerate workload")
	}

	got, summary := postNDJSON(t, coord.URL+"/datasets/d/selfjoin",
		map[string]any{"eps": eps, "stream": true})
	sortPairs2(got)
	if len(got) != len(want) {
		t.Fatalf("streamed %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
	if summary["total"].(float64) != float64(len(want)) || summary["partial"] != false {
		t.Fatalf("summary = %v", summary)
	}
	if int(summary["shards"].(float64)) < 2 {
		t.Fatalf("streamed join used %v shards — data was not distributed", summary["shards"])
	}
}
