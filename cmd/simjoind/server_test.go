package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) (*httptest.Server, func()) {
	t.Helper()
	ts := httptest.NewServer(newServer().handler())
	return ts, ts.Close
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func putPoints(t *testing.T, base, name string, pts [][]float64) {
	t.Helper()
	resp, body := doJSON(t, http.MethodPut, base+"/datasets/"+name, map[string]any{"points": pts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT %s: %d %v", name, resp.StatusCode, body)
	}
}

func TestUploadListDelete(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {1, 1}})

	resp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var list []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0]["name"] != "a" || list[0]["len"].(float64) != 2 {
		t.Fatalf("list = %v", list)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/datasets/a", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status %d", dresp.StatusCode)
	}
	dresp2, _ := http.DefaultClient.Do(req)
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE status %d", dresp2.StatusCode)
	}
}

func TestUploadCSV(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/datasets/c", strings.NewReader("0,0\n0.5,0.5\n"))
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&info)
	if resp.StatusCode != http.StatusOK || info["len"].(float64) != 2 || info["dims"].(float64) != 2 {
		t.Fatalf("CSV upload: %d %v", resp.StatusCode, info)
	}
}

func TestSelfJoinEndpoint(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {0.05, 0}, {0.5, 0.5}, {0.52, 0.5}, {0.9, 0.9}})
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/selfjoin", map[string]any{"eps": 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selfjoin: %d %v", resp.StatusCode, body)
	}
	pairs := body["pairs"].([]any)
	if len(pairs) != 2 || body["total"].(float64) != 2 {
		t.Fatalf("pairs = %v", body)
	}
	// Truncation.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/datasets/a/selfjoin", map[string]any{"eps": 0.1, "max_pairs": 1})
	if resp.StatusCode != http.StatusOK || len(body["pairs"].([]any)) != 1 || body["truncated"] != true {
		t.Fatalf("truncated selfjoin = %v", body)
	}
	// Algorithm selection passes through.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/datasets/a/selfjoin", map[string]any{"eps": 0.1, "algorithm": "grid", "metric": "L1"})
	if resp.StatusCode != http.StatusOK || body["total"].(float64) != 2 {
		t.Fatalf("grid/L1 selfjoin = %v", body)
	}
}

func TestTwoSetJoinEndpoint(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {5, 5}})
	putPoints(t, ts.URL, "b", [][]float64{{0.05, 0}, {9, 9}})
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/join", map[string]any{"a": "a", "b": "b", "eps": 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d %v", resp.StatusCode, body)
	}
	pairs := body["pairs"].([]any)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v", pairs)
	}
	got := pairs[0].([]any)
	if got[0].(float64) != 0 || got[1].(float64) != 0 {
		t.Fatalf("pair = %v", got)
	}
}

func TestRangeAndKNNEndpoints(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {0.05, 0}, {0.5, 0.5}})
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/range",
		map[string]any{"point": []float64{0, 0}, "radius": 0.06})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range: %d %v", resp.StatusCode, body)
	}
	if got := body["indexes"].([]any); len(got) != 2 {
		t.Fatalf("range indexes = %v", got)
	}
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/datasets/a/knn",
		map[string]any{"point": []float64{0, 0}, "k": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("knn: %d %v", resp.StatusCode, body)
	}
	nbrs := body["neighbors"].([]any)
	if len(nbrs) != 2 {
		t.Fatalf("neighbors = %v", nbrs)
	}
	first := nbrs[0].(map[string]any)
	if first["index"].(float64) != 0 || first["dist"].(float64) != 0 {
		t.Fatalf("nearest = %v", first)
	}
}

func TestErrorPaths(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}})
	putPoints(t, ts.URL, "b3", [][]float64{{0, 0, 0}})
	for name, call := range map[string]func() (*http.Response, map[string]any){
		"selfjoin missing dataset": func() (*http.Response, map[string]any) {
			return doJSON(t, http.MethodPost, ts.URL+"/datasets/nope/selfjoin", map[string]any{"eps": 0.1})
		},
		"selfjoin zero eps": func() (*http.Response, map[string]any) {
			return doJSON(t, http.MethodPost, ts.URL+"/datasets/a/selfjoin", map[string]any{})
		},
		"selfjoin bad metric": func() (*http.Response, map[string]any) {
			return doJSON(t, http.MethodPost, ts.URL+"/datasets/a/selfjoin", map[string]any{"eps": 0.1, "metric": "cosine"})
		},
		"join dims mismatch": func() (*http.Response, map[string]any) {
			return doJSON(t, http.MethodPost, ts.URL+"/join", map[string]any{"a": "a", "b": "b3", "eps": 0.1})
		},
		"join missing b": func() (*http.Response, map[string]any) {
			return doJSON(t, http.MethodPost, ts.URL+"/join", map[string]any{"a": "a", "b": "zz", "eps": 0.1})
		},
		"range dims mismatch": func() (*http.Response, map[string]any) {
			return doJSON(t, http.MethodPost, ts.URL+"/datasets/a/range", map[string]any{"point": []float64{0}, "radius": 0.1})
		},
		"range zero radius": func() (*http.Response, map[string]any) {
			return doJSON(t, http.MethodPost, ts.URL+"/datasets/a/range", map[string]any{"point": []float64{0, 0}})
		},
		"knn zero k": func() (*http.Response, map[string]any) {
			return doJSON(t, http.MethodPost, ts.URL+"/datasets/a/knn", map[string]any{"point": []float64{0, 0}})
		},
		"upload empty": func() (*http.Response, map[string]any) {
			return doJSON(t, http.MethodPut, ts.URL+"/datasets/x", map[string]any{"points": [][]float64{}})
		},
		"upload ragged": func() (*http.Response, map[string]any) {
			return doJSON(t, http.MethodPut, ts.URL+"/datasets/x", map[string]any{"points": []any{[]float64{1}, []float64{1, 2}}})
		},
	} {
		resp, body := call()
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Errorf("%s: status %d, want 4xx", name, resp.StatusCode)
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("%s: no error field: %v", name, body)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	pts := make([][]float64, 500)
	for i := range pts {
		pts[i] = []float64{float64(i%25) / 25, float64(i%20) / 20}
	}
	putPoints(t, ts.URL, "a", pts)
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 3; q++ {
				resp, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/knn",
					map[string]any{"point": []float64{0.3, 0.3}, "k": 3})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d: %d %v", w, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestAppendPointsInvalidatesIndex(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}})
	// Warm the index via a query, then append a point next to the origin.
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/knn",
		map[string]any{"point": []float64{0, 0}, "k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("knn: %d %v", resp.StatusCode, body)
	}
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/datasets/a/points",
		map[string]any{"points": [][]float64{{0.01, 0}, {9, 9}}})
	if resp.StatusCode != http.StatusOK || body["len"].(float64) != 3 {
		t.Fatalf("append: %d %v", resp.StatusCode, body)
	}
	// The new point must be visible in queries.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/datasets/a/range",
		map[string]any{"point": []float64{0, 0}, "radius": 0.05})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range: %d %v", resp.StatusCode, body)
	}
	if got := body["indexes"].([]any); len(got) != 2 {
		t.Fatalf("post-append range = %v, want origin + appended point", got)
	}
}

func TestAppendPointsErrors(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}})
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/points",
		map[string]any{"points": [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("dims mismatch append: status %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/datasets/a/points",
		map[string]any{"points": [][]float64{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty append: status %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/datasets/zzz/points",
		map[string]any{"points": [][]float64{{1, 2}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("append to missing dataset: status %d", resp.StatusCode)
	}
}

// TestConcurrentAppendAndQuery hammers appends against joins and KNN
// queries; copy-on-write snapshots must keep every response internally
// consistent (run under -race in CI).
func TestConcurrentAppendAndQuery(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	init := make([][]float64, 200)
	for i := range init {
		init[i] = []float64{float64(i%10) / 10, float64(i%7) / 7}
	}
	putPoints(t, ts.URL, "a", init)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)
	wg.Add(1)
	go func() { // appender
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/points",
				map[string]any{"points": [][]float64{{0.33, 0.44}}})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("append: %d %v", resp.StatusCode, body)
				return
			}
		}
		close(stop)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/selfjoin",
					map[string]any{"eps": 0.05, "max_pairs": 10})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("selfjoin: %d %v", resp.StatusCode, body)
					return
				}
				resp, body = doJSON(t, http.MethodPost, ts.URL+"/datasets/a/knn",
					map[string]any{"point": []float64{0.3, 0.4}, "k": 3})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("knn: %d %v", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHealthz(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&body)
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" || body["datasets"].(float64) != 1 {
		t.Fatalf("healthz: %d %v", resp.StatusCode, body)
	}
}
