package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"simjoin/internal/store"
)

// newPersistentServer builds a worker teeing through a catalog on dir,
// as `simjoind -data dir` would. The catalog is NOT closed on cleanup —
// abandoning it mid-flight is exactly the hard-kill the recovery tests
// simulate.
func newPersistentServer(t *testing.T, dir string, opt store.Options) (*httptest.Server, *server) {
	t.Helper()
	srv := newServer()
	opt.Hooks = storeHooks(srv.m)
	cat, err := store.Open(dir, opt)
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	srv.attachStore(cat)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// selfJoinPairs runs a selfjoin and returns its pair set in a canonical
// order.
func selfJoinPairs(t *testing.T, base, name string, eps float64) [][2]int {
	t.Helper()
	resp, body := doJSON(t, http.MethodPost, base+"/datasets/"+name+"/selfjoin", map[string]any{"eps": eps})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selfjoin %s: %d %v", name, resp.StatusCode, body)
	}
	raw := body["pairs"].([]any)
	out := make([][2]int, len(raw))
	for i, p := range raw {
		pp := p.([]any)
		out[i] = [2]int{int(pp[0].(float64)), int(pp[1].(float64))}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func listDatasets(t *testing.T, base string) map[string][2]int {
	t.Helper()
	resp, err := http.Get(base + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []datasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	out := make(map[string][2]int, len(list))
	for _, d := range list {
		out[d.Name] = [2]int{d.Len, d.Dims}
	}
	return out
}

// TestPersistenceKillAndRestart is the headline durability guarantee: a
// worker loaded via PUT + several appends, hard-killed (no shutdown, no
// catalog close) and restarted on the same directory serves the
// identical dataset list, lengths, and selfjoin pair set.
func TestPersistenceKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	ts1, _ := newPersistentServer(t, dir, store.Options{})

	pts := make([][]float64, 30)
	for i := range pts {
		pts[i] = []float64{float64(i%6) / 10, float64(i%5) / 10}
	}
	putPoints(t, ts1.URL, "a", pts)
	putPoints(t, ts1.URL, "b", [][]float64{{0, 0, 0}, {1, 1, 1}})
	for i := 0; i < 4; i++ {
		resp, body := doJSON(t, http.MethodPost, ts1.URL+"/datasets/a/points",
			map[string]any{"points": [][]float64{{float64(i) / 100, 0.05}, {0.9, float64(i) / 100}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d: %d %v", i, resp.StatusCode, body)
		}
	}
	wantList := listDatasets(t, ts1.URL)
	wantPairs := selfJoinPairs(t, ts1.URL, "a", 0.07)
	if wantList["a"][0] != 38 {
		t.Fatalf("pre-kill list = %v, want a with 38 points", wantList)
	}
	if len(wantPairs) == 0 {
		t.Fatal("selfjoin found no pairs; the fixture is too sparse to prove anything")
	}
	ts1.Close() // hard kill: catalog abandoned with files un-closed

	ts2, srv2 := newPersistentServer(t, dir, store.Options{})
	if got := listDatasets(t, ts2.URL); fmt.Sprint(got) != fmt.Sprint(wantList) {
		t.Fatalf("restarted list = %v, want %v", got, wantList)
	}
	if got := selfJoinPairs(t, ts2.URL, "a", 0.07); fmt.Sprint(got) != fmt.Sprint(wantPairs) {
		t.Fatalf("restarted selfjoin = %v, want %v", got, wantPairs)
	}
	rec := srv2.rec
	if len(rec.Datasets) != 2 || rec.Records() != 6 { // 2 puts + 4 appends
		t.Fatalf("recovery info = %+v", rec)
	}
}

// TestPersistenceTornTailRecovery tears the WAL mid-record underneath a
// killed worker; the restarted worker serves the valid prefix.
func TestPersistenceTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	ts1, _ := newPersistentServer(t, dir, store.Options{})
	putPoints(t, ts1.URL, "a", [][]float64{{0, 0}, {1, 1}, {2, 2}})
	resp, _ := doJSON(t, http.MethodPost, ts1.URL+"/datasets/a/points",
		map[string]any{"points": [][]float64{{3, 3}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("append failed")
	}
	ts1.Close()

	walPath := filepath.Join(dir, "a", "wal.log")
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	ts2, srv2 := newPersistentServer(t, dir, store.Options{})
	if got := listDatasets(t, ts2.URL); got["a"] != [2]int{3, 2} {
		t.Fatalf("after torn tail: %v, want the 3-point put", got)
	}
	if srv2.rec.TruncatedTails() != 1 {
		t.Fatalf("recovery = %+v, want one truncated tail", srv2.rec)
	}
}

func TestPersistenceDeleteSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts1, _ := newPersistentServer(t, dir, store.Options{})
	putPoints(t, ts1.URL, "keep", [][]float64{{0, 0}})
	putPoints(t, ts1.URL, "drop", [][]float64{{1, 1}})
	req, _ := http.NewRequest(http.MethodDelete, ts1.URL+"/datasets/drop", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status %d", dresp.StatusCode)
	}
	ts1.Close()

	ts2, _ := newPersistentServer(t, dir, store.Options{})
	got := listDatasets(t, ts2.URL)
	if len(got) != 1 || got["keep"] != [2]int{1, 2} {
		t.Fatalf("after restart: %v, want only keep", got)
	}
}

// TestPersistenceMetricsTracesHealthz asserts the observability surface
// the acceptance criteria name: store metrics in /metrics, store spans
// in /debug/traces, recovery state in /healthz.
func TestPersistenceMetricsTracesHealthz(t *testing.T) {
	dir := t.TempDir()
	// A tiny compaction threshold so snapshot + compaction fire too.
	ts, _ := newPersistentServer(t, dir, store.Options{CompactBytes: 64})
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {1, 1}})
	for i := 0; i < 5; i++ {
		resp, _ := doJSON(t, http.MethodPost, ts.URL+"/datasets/a/points",
			map[string]any{"points": [][]float64{{float64(i), float64(i)}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d failed", i)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metricsText := string(mbody)
	for _, name := range []string{
		"simjoind_store_wal_append_seconds",
		"simjoind_store_snapshot_seconds",
		"simjoind_store_compaction_seconds",
		"simjoind_store_compactions_total",
		"simjoind_store_fsyncs_total",
		"simjoind_store_wal_appended_bytes_total",
		"simjoind_store_wal_bytes",
	} {
		if !strings.Contains(metricsText, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	m := regexp.MustCompile(`(?m)^simjoind_store_compactions_total (\d+)`).FindStringSubmatch(metricsText)
	if m == nil {
		t.Errorf("compactions counter not exposed:\n%s", grepLines(metricsText, "compactions"))
	} else if n, _ := strconv.Atoi(m[1]); n < 1 {
		t.Errorf("compactions counter not incremented:\n%s", grepLines(metricsText, "compactions"))
	}

	tresp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	for _, span := range []string{"store.put", "store.append", "store.wal.append", "store.compact", "store.snapshot"} {
		if !strings.Contains(string(tbody), span) {
			t.Errorf("/debug/traces missing span %q", span)
		}
	}

	hresp, hbody := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}
	p, ok := hbody["persistence"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no persistence block: %v", hbody)
	}
	if p["enabled"] != true || p["wal_bytes"].(float64) < 0 {
		t.Fatalf("persistence block = %v", p)
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestPersistenceRejectsBadNames: names double as directories, so the
// durable worker narrows what PUT accepts.
func TestPersistenceRejectsBadNames(t *testing.T) {
	ts, _ := newPersistentServer(t, t.TempDir(), store.Options{})
	for _, name := range []string{".hidden", "a%2Fb", "sp%20ace"} {
		resp, body := doJSON(t, http.MethodPut, ts.URL+"/datasets/"+name, map[string]any{"points": [][]float64{{1}}})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("PUT %q: status %d %v, want 400", name, resp.StatusCode, body)
		}
	}
}

// TestMaxBodyBytesFlag: the upload cap is configurable per server and
// oversized bodies fail cleanly on every decode path.
func TestMaxBodyBytesFlag(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	srv := httptest.NewServer(func() http.Handler {
		s := newServer()
		s.maxBody = 64
		return s.handler()
	}())
	defer srv.Close()

	big := make([][]float64, 50)
	for i := range big {
		big[i] = []float64{float64(i), float64(i)}
	}
	// Under the default cap this upload succeeds…
	putPoints(t, ts.URL, "a", big)
	// …but the 64-byte server refuses it.
	resp, body := doJSON(t, http.MethodPut, srv.URL+"/datasets/a", map[string]any{"points": big})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized PUT: %d %v, want 400", resp.StatusCode, body)
	}
	if _, ok := body["error"]; !ok {
		t.Fatalf("no error field: %v", body)
	}
}
