package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"simjoin"
	"simjoin/internal/cluster"
	"simjoin/internal/rclient"
)

// startCluster boots n real in-process workers (the actual simjoind
// handler) and a coordinator over them, all on httptest servers.
func startCluster(t *testing.T, n int, margin float64) (coord *httptest.Server, workers []*httptest.Server) {
	t.Helper()
	urls := make([]string, n)
	workers = make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		workers[i] = httptest.NewServer(newServer().handler())
		urls[i] = workers[i].URL
		t.Cleanup(workers[i].Close)
	}
	rc := &rclient.Client{
		MaxRetries:     2,
		BaseDelay:      2 * time.Millisecond,
		MaxDelay:       10 * time.Millisecond,
		AttemptTimeout: 10 * time.Second,
		RetryPOST:      true,
	}
	coord = httptest.NewServer(newCoordServer(cluster.New(urls, margin, rc)).handler())
	t.Cleanup(coord.Close)
	return coord, workers
}

func clusterPoints(n, dims int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dims)
		for d := range p {
			p[d] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// pairsOf decodes a JSON pairs array into sorted [2]int form.
func pairsOf(t *testing.T, body map[string]any) [][2]int {
	t.Helper()
	raw, ok := body["pairs"].([]any)
	if !ok {
		t.Fatalf("no pairs in %v", body)
	}
	out := make([][2]int, len(raw))
	for i, p := range raw {
		pp := p.([]any)
		out[i] = [2]int{int(pp[0].(float64)), int(pp[1].(float64))}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// TestClusterSelfJoinMatchesSingleNode is the subsystem's acceptance
// test: a distributed self-join over three real workers must return
// exactly the single-node ekdb pair set.
func TestClusterSelfJoinMatchesSingleNode(t *testing.T) {
	const (
		n, dims = 400, 6
		eps     = 0.3
		margin  = 0.35
	)
	coord, _ := startCluster(t, 3, margin)
	pts := clusterPoints(n, dims, 101)
	putPoints(t, coord.URL, "d", pts)

	resp, body := doJSON(t, http.MethodPost, coord.URL+"/datasets/d/selfjoin",
		map[string]any{"eps": eps, "algorithm": "ekdb"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster selfjoin: %d %v", resp.StatusCode, body)
	}
	if body["partial"] != false {
		t.Fatalf("healthy cluster returned partial result: %v", body)
	}
	got := pairsOf(t, body)

	res, err := simjoin.SelfJoin(simjoin.FromPoints(pts), simjoin.Options{Eps: eps, Algorithm: simjoin.AlgorithmEKDB})
	if err != nil {
		t.Fatalf("single-node join: %v", err)
	}
	want := make([][2]int, len(res.Pairs))
	for i, p := range res.Pairs {
		want[i] = [2]int{p.I, p.J}
	}
	sort.Slice(want, func(a, b int) bool {
		if want[a][0] != want[b][0] {
			return want[a][0] < want[b][0]
		}
		return want[a][1] < want[b][1]
	})
	if len(want) == 0 {
		t.Fatal("oracle found no pairs — test parameters are vacuous")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cluster pair set differs from single node: got %d pairs, want %d", len(got), len(want))
	}
	if int(body["shards"].(float64)) < 2 {
		t.Fatalf("join used %v shards — data was not distributed", body["shards"])
	}
}

// TestClusterSelfJoinPartialOnDeadWorker is the degradation half of the
// acceptance criteria: with one worker killed the coordinator still
// answers, tagged partial with the failed shard named.
func TestClusterSelfJoinPartialOnDeadWorker(t *testing.T) {
	coord, workers := startCluster(t, 3, 0.35)
	pts := clusterPoints(300, 4, 202)
	putPoints(t, coord.URL, "d", pts)

	_, full := doJSON(t, http.MethodPost, coord.URL+"/datasets/d/selfjoin", map[string]any{"eps": 0.25})
	fullPairs := pairsOf(t, full)

	workers[1].Close()
	resp, body := doJSON(t, http.MethodPost, coord.URL+"/datasets/d/selfjoin", map[string]any{"eps": 0.25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selfjoin with dead worker: %d %v", resp.StatusCode, body)
	}
	if body["partial"] != true {
		t.Fatalf("want partial=true with a dead worker, got %v", body)
	}
	failed, ok := body["failed_shards"].([]any)
	if !ok || len(failed) == 0 {
		t.Fatalf("failed_shards missing: %v", body)
	}
	named := false
	for _, f := range failed {
		fs := f.(map[string]any)
		if fs["url"] == workers[1].URL && fs["error"] != "" {
			named = true
		}
	}
	if !named {
		t.Fatalf("failed_shards %v does not name the dead worker %s", failed, workers[1].URL)
	}
	// Whatever survived must be a subset of the full pair set.
	fullSet := make(map[[2]int]bool, len(fullPairs))
	for _, p := range fullPairs {
		fullSet[p] = true
	}
	partial := pairsOf(t, body)
	if len(partial) >= len(fullPairs) {
		t.Fatalf("partial result has %d pairs, full had %d — shard 1 contributed nothing?", len(partial), len(fullPairs))
	}
	for _, p := range partial {
		if !fullSet[p] {
			t.Fatalf("partial result invented pair %v", p)
		}
	}
}

func TestClusterRangeAndKNNMatchSingleNode(t *testing.T) {
	coord, _ := startCluster(t, 4, 0.2)
	pts := clusterPoints(350, 3, 303)
	putPoints(t, coord.URL, "d", pts)
	nn := simjoin.NewNeighborIndex(simjoin.FromPoints(pts))
	q := []float64{0.4, 0.6, 0.5}

	// Range, with a radius larger than the margin: routing covers every
	// slab the ball touches regardless of the replication width.
	resp, body := doJSON(t, http.MethodPost, coord.URL+"/datasets/d/range",
		map[string]any{"point": q, "radius": 0.45})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range: %d %v", resp.StatusCode, body)
	}
	got := []int{}
	for _, v := range body["indexes"].([]any) {
		got = append(got, int(v.(float64)))
	}
	want := nn.Range(q, simjoin.L2, 0.45)
	sort.Ints(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cluster range = %d hits, single node = %d", len(got), len(want))
	}

	// KNN across all shards.
	resp, body = doJSON(t, http.MethodPost, coord.URL+"/datasets/d/knn",
		map[string]any{"point": q, "k": 12})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("knn: %d %v", resp.StatusCode, body)
	}
	gotN := body["neighbors"].([]any)
	wantN := nn.KNN(q, 12, simjoin.L2)
	if len(gotN) != len(wantN) {
		t.Fatalf("knn returned %d neighbors, want %d", len(gotN), len(wantN))
	}
	for i := range wantN {
		g := gotN[i].(map[string]any)
		if int(g["index"].(float64)) != wantN[i].Index {
			t.Fatalf("knn[%d] = %v, want index %d", i, g, wantN[i].Index)
		}
	}
}

func TestClusterCSVUploadAndList(t *testing.T) {
	coord, _ := startCluster(t, 2, 0.2)
	req, _ := http.NewRequest(http.MethodPut, coord.URL+"/datasets/c", strings.NewReader("0,0\n0.1,0\n0.9,0.9\n"))
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&info)
	if resp.StatusCode != http.StatusOK || info["len"].(float64) != 3 || info["dims"].(float64) != 2 {
		t.Fatalf("CSV upload via coordinator: %d %v", resp.StatusCode, info)
	}
	r2, err := http.Get(coord.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var list []map[string]any
	_ = json.NewDecoder(r2.Body).Decode(&list)
	r2.Body.Close()
	if len(list) != 1 || list[0]["name"] != "c" || list[0]["len"].(float64) != 3 {
		t.Fatalf("coordinator list = %v", list)
	}
}

func TestClusterErrorPaths(t *testing.T) {
	coord, _ := startCluster(t, 2, 0.2)
	putPoints(t, coord.URL, "d", clusterPoints(40, 2, 404))

	// eps beyond the shard margin is rejected, not silently wrong.
	resp, body := doJSON(t, http.MethodPost, coord.URL+"/datasets/d/selfjoin", map[string]any{"eps": 0.9})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body["error"].(string), "margin") {
		t.Fatalf("eps > margin: %d %v", resp.StatusCode, body)
	}
	// Unknown dataset.
	resp, _ = doJSON(t, http.MethodPost, coord.URL+"/datasets/nope/selfjoin", map[string]any{"eps": 0.1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing dataset: %d", resp.StatusCode)
	}
	// Endpoints the cluster does not distribute.
	resp, _ = doJSON(t, http.MethodPost, coord.URL+"/join", map[string]any{"a": "d", "b": "d", "eps": 0.1})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("/join in coordinator mode: %d", resp.StatusCode)
	}
	// Appends are distributed now: the batch routes to its shards and
	// the reported length grows.
	resp, appended := doJSON(t, http.MethodPost, coord.URL+"/datasets/d/points", map[string]any{"points": [][]float64{{1, 2}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append in coordinator mode: %d", resp.StatusCode)
	}
	if n, _ := appended["len"].(float64); n < 2 {
		t.Fatalf("appended len = %v, want growth", appended["len"])
	}
	resp, _ = doJSON(t, http.MethodPost, coord.URL+"/datasets/missing/points", map[string]any{"points": [][]float64{{1, 2}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("append to missing dataset: %d", resp.StatusCode)
	}
	// Deleting through the coordinator clears every worker.
	req, _ := http.NewRequest(http.MethodDelete, coord.URL+"/datasets/d", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("coordinator delete: %d", dresp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPost, coord.URL+"/datasets/d/selfjoin", map[string]any{"eps": 0.1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("selfjoin after delete: %d", resp.StatusCode)
	}
}

func TestCoordinatorHealthzDegrades(t *testing.T) {
	coord, workers := startCluster(t, 3, 0.2)
	r, err := http.Get(coord.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	_ = json.NewDecoder(r.Body).Decode(&body)
	r.Body.Close()
	if body["status"] != "ok" {
		t.Fatalf("healthy cluster healthz = %v", body)
	}
	if ws := body["workers"].([]any); len(ws) != 3 {
		t.Fatalf("workers = %v", ws)
	}

	workers[0].Close()
	r, err = http.Get(coord.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body = map[string]any{}
	_ = json.NewDecoder(r.Body).Decode(&body)
	r.Body.Close()
	if body["status"] != "degraded" {
		t.Fatalf("healthz with dead worker = %v", body)
	}
}

func TestDebugVarsCounters(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	putPoints(t, ts.URL, "a", [][]float64{{0, 0}, {1, 1}})
	// One error: selfjoin on a missing dataset.
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/datasets/zzz/selfjoin", map[string]any{"eps": 0.1})
	resp.Body.Close()

	r, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Requests map[string]int `json:"requests"`
		Errors   map[string]int `json:"errors"`
	}
	if err := json.NewDecoder(r.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if vars.Requests["PUT /datasets/{name}"] != 1 {
		t.Errorf("requests = %v, want 1 PUT", vars.Requests)
	}
	if vars.Requests["POST /datasets/{name}/selfjoin"] != 1 || vars.Errors["POST /datasets/{name}/selfjoin"] != 1 {
		t.Errorf("selfjoin counters = %v / %v, want 1 request and 1 error", vars.Requests, vars.Errors)
	}
	if len(vars.Errors) != 1 {
		t.Errorf("errors = %v, want only the selfjoin miss", vars.Errors)
	}
}
