package main

import (
	"encoding/json"
	"net/http"
	"time"

	"simjoin/internal/obsv"
)

// metrics is the server's observability surface: per-route request and
// error counters, a per-route latency histogram, and dedicated streaming
// counters (NDJSON responses bypass response buffering, so their pair
// volume is only visible here). Served two ways: Prometheus text at
// GET /metrics, and the legacy /debug/vars JSON shape kept for existing
// scrapers. Each server instance owns its own registry rather than a
// process global, so tests (and a worker + coordinator sharing one
// process) can run many servers without duplicate-name collisions.
type metrics struct {
	reg      *obsv.Registry
	requests *obsv.CounterVec
	errors   *obsv.CounterVec
	latency  *obsv.HistogramVec

	// streamRequests counts requests answered as NDJSON streams and
	// streamPairs the pair lines they emitted — the volume that never
	// shows up in response-size accounting.
	streamRequests *obsv.CounterVec
	streamPairs    *obsv.Counter

	// Storage-engine surface (fed by store.Hooks when -data is set; the
	// series exist either way so dashboards never 404 on the name):
	// per-operation latency histograms plus fsync/compaction/byte tallies.
	storeWALAppend   *obsv.Histogram
	storeSnapshot    *obsv.Histogram
	storeCompaction  *obsv.Histogram
	storeWALBytes    *obsv.Counter
	storeFsyncs      *obsv.Counter
	storeCompactions *obsv.Counter

	// Live matching engine surface (fed by live.Hooks; an active-
	// subscription gauge is registered per mode where the engine lives):
	// standing-query churn, delta volume, and index mutation latency.
	liveSubscribed   *obsv.Counter
	liveEvictions    *obsv.Counter
	liveBatches      *obsv.Counter
	liveDeltaPairs   *obsv.Counter
	liveCatchupPairs *obsv.Counter
	liveAppend       *obsv.Histogram

	// Estimation / admission surface, prefixed simjoin_ rather than
	// simjoind_ because the numbers come from the library's planner:
	// how many pre-query estimates were served and from where, what
	// admission control did with them, and how predictions compared to
	// the results that actually came out.
	estimateRequests *obsv.CounterVec
	estimateRejected *obsv.Counter
	estimateDegraded *obsv.Counter
	estimateRatio    *obsv.Histogram

	// Query-journal surface: every journaled query lands in the
	// per-algorithm latency histogram, and the slow counter tallies the
	// ones past the journal's slow threshold — the scrapeable shadow of
	// GET /debug/queries.
	querySlow    *obsv.Counter
	queryLatency *obsv.HistogramVec
}

func newMetrics() *metrics {
	reg := obsv.NewRegistry()
	// Runtime health telemetry (goroutines, heap, GC pauses, scheduler
	// latency) rides on every daemon registry; samples are taken at
	// scrape time, so an idle daemon costs nothing.
	obsv.NewRuntimeCollector().Register(reg, "simjoind")
	return &metrics{
		reg:            reg,
		requests:       reg.NewCounterVec("simjoind_requests_total", "HTTP requests by route.", "route"),
		errors:         reg.NewCounterVec("simjoind_errors_total", "HTTP responses with status >= 400 by route.", "route"),
		latency:        reg.NewHistogramVec("simjoind_request_duration_seconds", "HTTP request latency by route.", "route", obsv.LatencyBuckets()),
		streamRequests: reg.NewCounterVec("simjoind_stream_requests_total", "Requests answered as NDJSON streams by route.", "route"),
		streamPairs:    reg.NewCounter("simjoind_stream_pairs_total", "Pair lines emitted over NDJSON streams."),

		storeWALAppend:   reg.NewHistogram("simjoind_store_wal_append_seconds", "WAL record write+sync latency.", obsv.LatencyBuckets()),
		storeSnapshot:    reg.NewHistogram("simjoind_store_snapshot_seconds", "Snapshot file write latency.", obsv.LatencyBuckets()),
		storeCompaction:  reg.NewHistogram("simjoind_store_compaction_seconds", "WAL-into-snapshot compaction latency.", obsv.LatencyBuckets()),
		storeWALBytes:    reg.NewCounter("simjoind_store_wal_appended_bytes_total", "Bytes appended to write-ahead logs."),
		storeFsyncs:      reg.NewCounter("simjoind_store_fsyncs_total", "fsync calls issued by the storage engine."),
		storeCompactions: reg.NewCounter("simjoind_store_compactions_total", "WAL-into-snapshot compactions completed."),

		liveSubscribed:   reg.NewCounter("simjoind_live_subscriptions_total", "Standing-query subscriptions registered."),
		liveEvictions:    reg.NewCounter("simjoind_live_evictions_total", "Subscriptions evicted as slow consumers."),
		liveBatches:      reg.NewCounter("simjoind_live_batches_total", "Batch events delivered to subscribers."),
		liveDeltaPairs:   reg.NewCounter("simjoind_live_delta_pairs_total", "Delta pairs delivered to subscribers."),
		liveCatchupPairs: reg.NewCounter("simjoind_live_catchup_pairs_total", "Pairs re-derived by catch-up replays."),
		liveAppend:       reg.NewHistogram("simjoind_live_append_seconds", "Incremental index mutation latency per appended batch (delta compute + insert).", obsv.LatencyBuckets()),

		estimateRequests: reg.NewCounterVec("simjoin_estimate_requests_total", "Join-size estimates served before queries, by source (sketch or sample).", "source"),
		estimateRejected: reg.NewCounter("simjoin_estimate_rejected_total", "Join queries rejected (429) because the estimated result size exceeded the -max-pairs budget."),
		estimateDegraded: reg.NewCounter("simjoin_estimate_degraded_total", "Over-budget join queries degraded to counting-only runs."),
		estimateRatio:    reg.NewHistogram("simjoin_estimate_ratio", "Predicted over actual result size for completed joins that carried an estimate.", estimateRatioBuckets()),

		querySlow:    reg.NewCounter("simjoin_query_slow_total", "Journaled queries that ran past the journal's slow threshold."),
		queryLatency: reg.NewHistogramVec("simjoin_query_duration_seconds", "Journaled query latency by resolved algorithm.", "algorithm", obsv.LatencyBuckets()),
	}
}

// estimateRatioBuckets spans under- and over-prediction symmetrically in
// powers of two (1/16 … 16): a calibrated estimator concentrates mass
// around the 1.0 boundary, and drift shows up as skew toward either end.
func estimateRatioBuckets() []float64 {
	return []float64{1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1, 2, 4, 8, 16}
}

// estimateSource labels one served estimate for the per-source counter.
func estimateSource(sketched bool) string {
	if sketched {
		return "sketch"
	}
	return "sample"
}

// observeEstimateRatio records predicted/actual for a completed run.
// Runs without an estimate (est < 0) or with an empty result are
// skipped — the ratio is undefined for the former and unbounded for the
// latter.
func (m *metrics) observeEstimateRatio(est, actual int64) {
	if est >= 0 && actual > 0 {
		m.estimateRatio.Observe(float64(est) / float64(actual))
	}
}

// statusWriter records the status code so error responses can be
// counted, and the body bytes written so access logs can report
// response size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so NDJSON streaming keeps working
// through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer's
// optional interfaces (SetWriteDeadline, used by watch streams) through
// the middleware.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// wrap counts every request and every ≥ 400 response under key, and
// observes the handler's wall time in the route's latency histogram.
func (m *metrics) wrap(key string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m.requests.With(key).Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		m.latency.With(key).Observe(time.Since(start).Seconds())
		if sw.status >= 400 {
			m.errors.With(key).Inc()
		}
	}
}

// promHandler serves the registry as Prometheus text exposition.
func (m *metrics) promHandler() http.Handler { return m.reg.Handler() }

// varsHandler serves the legacy /debug/vars JSON shape — per-route
// request and error counts — from the same counters /metrics exposes.
func (m *metrics) varsHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	out := map[string]map[string]int64{
		"requests": m.requests.Snapshot(),
		"errors":   m.errors.Snapshot(),
	}
	_ = json.NewEncoder(w).Encode(out)
}
