package main

import (
	"expvar"
	"fmt"
	"net/http"
)

// metrics tracks per-route request and error counts with expvar types,
// served at GET /debug/vars. Each server instance owns its own maps
// rather than publishing into the process-global expvar registry, so
// tests (and a worker + coordinator sharing one process) can run many
// servers without duplicate-name panics.
type metrics struct {
	requests expvar.Map
	errors   expvar.Map
}

func newMetrics() *metrics {
	m := &metrics{}
	m.requests.Init()
	m.errors.Init()
	return m
}

// statusWriter records the status code so error responses can be counted.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// wrap counts every request, and every ≥ 400 response, under key.
func (m *metrics) wrap(key string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m.requests.Add(key, 1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		if sw.status >= 400 {
			m.errors.Add(key, 1)
		}
	}
}

// handler serves the counters; expvar.Map values render as JSON objects.
func (m *metrics) handler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"requests\":%s,\"errors\":%s}\n", m.requests.String(), m.errors.String())
}
