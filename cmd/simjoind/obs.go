package main

import (
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"simjoin/internal/obsv/trace"
)

// defaultTraceCapacity is how many completed traces each daemon retains
// for GET /debug/traces.
const defaultTraceCapacity = 128

// instrument is the daemon middleware stack shared by worker and
// coordinator mode. Outermost it opens a server span — continuing the
// caller's trace when the request carries a W3C traceparent header, a
// fresh trace otherwise — and stores it in the request context so
// handlers, the join library and the coordinator's fan-out all record
// under it. Inside that it applies the metrics wrap (request/error
// counters, latency histogram), and when the handler returns it emits
// one structured access-log line carrying trace_id/span_id, so logs and
// /debug/traces cross-link on the IDs.
func instrument(m *metrics, tr *trace.Tracer, logger *slog.Logger, pattern string, h http.HandlerFunc) http.HandlerFunc {
	inner := m.wrap(pattern, h)
	return func(w http.ResponseWriter, r *http.Request) {
		sp := tr.StartRemote(pattern, r.Header.Get("traceparent"))
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		if reqID := r.Header.Get("X-Request-Id"); reqID != "" {
			sp.SetAttr("request_id", reqID)
		}
		if sp != nil {
			r = r.WithContext(trace.NewContext(r.Context(), sp))
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		inner(sw, r)
		elapsed := time.Since(start)
		sp.SetAttr("status", strconv.Itoa(sw.status))
		sp.End()
		if logger == nil {
			return
		}
		level := slog.LevelInfo
		if sw.status >= 500 {
			level = slog.LevelError
		} else if sw.status >= 400 {
			level = slog.LevelWarn
		}
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("route", pattern),
			slog.Int("status", sw.status),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("duration", elapsed),
		}
		if sp != nil {
			attrs = append(attrs,
				slog.String("trace_id", sp.TraceID().String()),
				slog.String("span_id", sp.SpanID().String()))
		}
		if reqID := r.Header.Get("X-Request-Id"); reqID != "" {
			attrs = append(attrs, slog.String("request_id", reqID))
		}
		logger.Log(r.Context(), level, "request", attrs...)
	}
}

// tracesHandler serves the tracer's retained traces as JSON, newest
// first — the raw material for debugging one slow request after the
// fact. ?trace=<id> keeps only that trace's entries (a daemon can
// retain several views of one distributed trace) and ?limit=N caps the
// answer; the unfiltered shape stays a bare array for existing
// scrapers. The route is deliberately outside the metrics/trace
// middleware: scraping traces must not mint traces.
func tracesHandler(tr *trace.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		traces := tr.Traces()
		for i, j := 0, len(traces)-1; i < j; i, j = i+1, j-1 {
			traces[i], traces[j] = traces[j], traces[i]
		}
		if want := r.URL.Query().Get("trace"); want != "" {
			kept := traces[:0]
			for _, td := range traces {
				if td.TraceID == want {
					kept = append(kept, td)
				}
			}
			traces = kept
		}
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				httpError(w, http.StatusBadRequest, "limit must be a non-negative integer, got %q", v)
				return
			}
			if n < len(traces) {
				traces = traces[:n]
			}
		}
		if traces == nil {
			traces = []trace.TraceData{}
		}
		writeJSON(w, traces)
	}
}

// traceByIDHandler serves GET /debug/traces/{id}: every span the daemon
// retains under one trace ID, merged across its retained trace views
// into a single TraceData. On a worker this is the local half of
// distributed stitching; the coordinator's variant fans out over the
// fleet (see handleStitchedTrace).
func traceByIDHandler(tr *trace.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		spans := trace.Collect(tr.Traces(), id)
		if len(spans) == 0 {
			httpError(w, http.StatusNotFound, "no trace %q retained", id)
			return
		}
		writeJSON(w, trace.Stitch(id, spans))
	}
}

// buildVersion is the binary's identity block for /healthz, computed
// once: module version, VCS commit and dirty flag from the embedded
// build info, plus the Go toolchain — enough for a scrape or an
// incident report to say exactly which binary was serving.
var buildVersion = func() map[string]any {
	out := map[string]any{"go": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if v := bi.Main.Version; v != "" {
		out["version"] = v
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out["commit"] = s.Value
		case "vcs.time":
			out["commit_time"] = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				out["dirty"] = true
			}
		}
	}
	return out
}()
