package main

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"simjoin/internal/obsv/trace"
)

// defaultTraceCapacity is how many completed traces each daemon retains
// for GET /debug/traces.
const defaultTraceCapacity = 128

// instrument is the daemon middleware stack shared by worker and
// coordinator mode. Outermost it opens a server span — continuing the
// caller's trace when the request carries a W3C traceparent header, a
// fresh trace otherwise — and stores it in the request context so
// handlers, the join library and the coordinator's fan-out all record
// under it. Inside that it applies the metrics wrap (request/error
// counters, latency histogram), and when the handler returns it emits
// one structured access-log line carrying trace_id/span_id, so logs and
// /debug/traces cross-link on the IDs.
func instrument(m *metrics, tr *trace.Tracer, logger *slog.Logger, pattern string, h http.HandlerFunc) http.HandlerFunc {
	inner := m.wrap(pattern, h)
	return func(w http.ResponseWriter, r *http.Request) {
		sp := tr.StartRemote(pattern, r.Header.Get("traceparent"))
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		if reqID := r.Header.Get("X-Request-Id"); reqID != "" {
			sp.SetAttr("request_id", reqID)
		}
		if sp != nil {
			r = r.WithContext(trace.NewContext(r.Context(), sp))
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		inner(sw, r)
		elapsed := time.Since(start)
		sp.SetAttr("status", strconv.Itoa(sw.status))
		sp.End()
		if logger == nil {
			return
		}
		level := slog.LevelInfo
		if sw.status >= 500 {
			level = slog.LevelError
		} else if sw.status >= 400 {
			level = slog.LevelWarn
		}
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("route", pattern),
			slog.Int("status", sw.status),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("duration", elapsed),
		}
		if sp != nil {
			attrs = append(attrs,
				slog.String("trace_id", sp.TraceID().String()),
				slog.String("span_id", sp.SpanID().String()))
		}
		if reqID := r.Header.Get("X-Request-Id"); reqID != "" {
			attrs = append(attrs, slog.String("request_id", reqID))
		}
		logger.Log(r.Context(), level, "request", attrs...)
	}
}

// tracesHandler serves the tracer's retained traces as JSON, newest
// first — the raw material for debugging one slow request after the
// fact. The route is deliberately outside the metrics/trace middleware:
// scraping traces must not mint traces.
func tracesHandler(tr *trace.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		traces := tr.Traces()
		for i, j := 0, len(traces)-1; i < j; i, j = i+1, j-1 {
			traces[i], traces[j] = traces[j], traces[i]
		}
		if traces == nil {
			traces = []trace.TraceData{}
		}
		writeJSON(w, traces)
	}
}
