package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"simjoin/internal/cluster"
	"simjoin/internal/live"
	"simjoin/internal/obsv/querylog"
	"simjoin/internal/vec"
)

// handleAppend distributes POST /datasets/{name}/points: the batch is
// routed to its shards under the original cuts and appended on each
// worker, which in turn feeds every standing query watching the
// dataset. The response is the worker shape plus the cluster
// degradation fields.
func (s *coordServer) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	pts, ok := decodeUpload(w, r, s.maxBody)
	if !ok {
		return
	}
	defer s.observeFanout("append", time.Now())
	res, err := s.c.Append(r.Context(), name, pts)
	if err != nil {
		coordError(w, err)
		return
	}
	writeJSON(w, map[string]any{
		"name":          res.Info.Name,
		"len":           res.Info.Len,
		"dims":          res.Info.Dims,
		"partial":       res.Partial,
		"failed_shards": res.Failed,
	})
}

// handleGetDataset answers GET /datasets/{name} from the shard map: the
// dataset's global shape, how it is spread over the fleet, and how many
// standing queries are watching it through this coordinator. With ?eps=
// (and optional &metric=) the answer gains an "estimate" block — the
// summed predicted self-join size plus each shard's own estimate,
// gathered from the workers' sketches in one scatter.
func (s *coordServer) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sm, ok := s.c.Map(name)
	if !ok {
		httpError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	replicas := 0
	for _, sh := range sm.Shards {
		replicas += len(sh.Global)
	}
	out := map[string]any{
		"name":    name,
		"len":     sm.Total,
		"dims":    sm.Dims,
		"margin":  sm.Margin,
		"shards":  len(sm.Shards),
		"stored":  replicas,
		"watches": s.watchCount(name),
	}
	if v := r.URL.Query().Get("eps"); v != "" {
		eps, err := strconv.ParseFloat(v, 64)
		if err != nil || !(eps > 0) {
			httpError(w, http.StatusBadRequest, "eps must be a positive number, got %q", v)
			return
		}
		defer s.observeFanout("estimate", time.Now())
		est, err := s.c.EstimateSelfJoin(r.Context(), name, eps, r.URL.Query().Get("metric"))
		if err != nil {
			coordError(w, err)
			return
		}
		out["estimate"] = map[string]any{
			"eps":             eps,
			"pairs":           est.Pairs,
			"partial":         est.Partial,
			"shard_estimates": est.Shards,
		}
	}
	writeJSON(w, out)
}

// addWatch / removeWatch / watchCount maintain the per-dataset tally of
// standing queries flowing through this coordinator.
func (s *coordServer) addWatch(name string) {
	s.watchMu.Lock()
	s.watches[name]++
	s.watchMu.Unlock()
}

func (s *coordServer) removeWatch(name string) {
	s.watchMu.Lock()
	if s.watches[name]--; s.watches[name] <= 0 {
		delete(s.watches, name)
	}
	s.watchMu.Unlock()
}

func (s *coordServer) watchCount(name string) int {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	return s.watches[name]
}

// watchTotal is the active standing-query count across all datasets,
// for the coordinator's live-subscription gauge.
func (s *coordServer) watchTotal() int {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	n := 0
	for _, c := range s.watches {
		n += c
	}
	return n
}

// shutdownWatches ends every standing-query stream with a terminal
// "server shutting down" event, so graceful shutdown is not held open
// by long-lived watches. Safe to call more than once.
func (s *coordServer) shutdownWatches() {
	s.stopOnce.Do(func() { close(s.stopWatches) })
}

// handleWatch serves the coordinator's POST /datasets/{name}/watch: the
// same NDJSON contract as a worker, but over global upload-order
// indexes, fed by one watch stream per shard (see cluster.Watch).
// Self-join only; "after" supports exactly the two coordinator cursors
// — omitted (live: pairs created from now on) and 0 (full replay first)
// — because finer-grained resume lives on the workers, which the
// coordinator reconnects to with their own cursors automatically.
func (s *coordServer) handleWatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req watchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	if req.Other != "" {
		httpError(w, http.StatusNotImplemented, "two-set watches not supported in coordinator mode")
		return
	}
	if req.After != nil && *req.After != 0 {
		httpError(w, http.StatusBadRequest, `coordinator watches support "after" omitted (live) or 0 (full replay), got %d`, *req.After)
		return
	}
	fromStart := req.After != nil
	metric := vec.L2
	if req.Metric != "" {
		var err error
		if metric, err = vec.ParseMetric(req.Metric); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	// Validate everything cluster.Watch would reject before committing
	// to a streaming 200.
	sm, ok := s.c.Map(name)
	if !ok {
		httpError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	if !(req.Eps > 0) {
		httpError(w, http.StatusBadRequest, "eps must be positive")
		return
	}
	if req.Eps > sm.Margin {
		httpError(w, http.StatusBadRequest, "eps %g exceeds the dataset's shard margin %g; re-upload with a larger margin", req.Eps, sm.Margin)
		return
	}

	s.m.streamRequests.With("POST /datasets/{name}/watch").Inc()
	s.addWatch(name)
	defer s.removeWatch(name)
	// Journal the watch when the stream ends, with the delta volume it
	// delivered over its whole lifetime.
	watchStart := time.Now()
	var delivered int64
	defer func() {
		recordQuery(s.qlog, s.m, querylog.Record{
			Kind: "watch", Dataset: name, Eps: req.Eps,
			Metric: metric.String(), Stream: true, Shards: len(sm.Shards),
			EstimatedPairs: -1, ActualPairs: delivered,
			ElapsedNS: int64(time.Since(watchStart)),
			TraceID:   traceIDOf(r), Outcome: querylog.OutcomeOK,
		})
	}()
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.stopWatches:
			cancel()
		case <-ctx.Done():
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	rc := http.NewResponseController(w)
	flush := func() error {
		_ = rc.SetWriteDeadline(time.Now().Add(watchWriteTimeout))
		if err := bw.Flush(); err != nil {
			return err
		}
		return rc.Flush()
	}
	if !writeEventLine(bw, map[string]any{
		"event": "hello", "dataset": name, "seq": sm.Total,
		"eps": req.Eps, "metric": metric.String(),
	}) || flush() != nil {
		return
	}
	reason, err := s.c.Watch(ctx, name, cluster.JoinQuery{Eps: req.Eps, Metric: req.Metric}, fromStart, func(ev cluster.WatchEvent) bool {
		for _, p := range ev.Pairs {
			fmt.Fprintf(bw, "[%d,%d]\n", p[0], p[1])
		}
		delivered += int64(len(ev.Pairs))
		s.m.streamPairs.Add(int64(len(ev.Pairs)))
		marker := map[string]any{
			"event": "batch", "shard": ev.Shard, "seq": ev.Seq,
			"added": ev.Added, "pairs": len(ev.Pairs),
		}
		if ev.CatchUp {
			marker["catch_up"] = true
		}
		return writeEventLine(bw, marker) && flush() == nil
	})
	if err != nil {
		var nfe cluster.NotFoundError
		switch {
		case errors.As(err, &nfe):
			// The dataset vanished between the pre-check and the watch.
			reason = live.ReasonDeleted
		case errors.Is(err, context.Canceled):
			select {
			case <-s.stopWatches:
				reason = live.ReasonShutdown
			default:
				// The client went away; nobody is reading an end event.
				return
			}
		default:
			return
		}
	}
	if reason != "" {
		writeEventLine(bw, map[string]any{"event": "end", "reason": reason})
		_ = flush()
	}
}
