// Command simjoinbench runs the repository's pinned benchmark suite and
// writes a machine-readable report, so performance is tracked the same
// way correctness is: one committed baseline, one comparison gate.
//
// The suite is fixed — self-join and two-set join, dimensionality 8 and
// 16, serial and Workers=NumCPU, collecting and streaming — over seeded
// synthetic clustered data, so every run measures the same work. Two
// live-engine cases ride along: incremental Range+Insert of a 64-point
// batch against a standing index versus a full rebuild plus re-probe.
// Two estimator cases track the resident join-size sketch: the cost of
// absorbing a 64-point batch, and the cost of one sketch-served plan.
// High-dimensional self-join cases (d32/d64, plus float32-mode variants)
// and three vec/ kernel microbenchmarks pin the flat distance kernels
// directly (see docs/KERNELS.md).
//
//	simjoinbench [-quick] [-only vec/] [-out BENCH_2006-01-02.json]
//	simjoinbench -quick -baseline bench/BENCH_xxx.json [-threshold 0.2]
//	simjoinbench -compare old.json new.json [-threshold 0.2]
//
// -only restricts both the run and the gate to cases with a name prefix,
// so the kernel microbenchmarks can be gated as their own CI job.
//
// With -baseline, the freshly measured suite is compared case-by-case
// against the committed baseline and the process exits 1 when any case's
// ns/op regressed by more than the threshold. -compare applies the same
// gate to two existing reports without running anything. Compare runs
// like against like: a -quick report must be gated against a -quick
// baseline (the gate refuses otherwise).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"simjoin"
	"simjoin/internal/vec"
)

// gitCommit reports the working tree's short revision, best-effort:
// outside a git checkout (or without git on PATH) it returns "" rather
// than failing the run.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// benchRepeats is how many times each case is measured; the reported
// ns/op is the fastest run.
const benchRepeats = 3

// Schema identifies the report format; bump only with a migration note
// in docs/OBSERVABILITY.md.
const Schema = "simjoinbench/v1"

// Report is the file simjoinbench writes: the suite's configuration and
// one Case per pinned benchmark.
type Report struct {
	Schema string `json:"schema"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	OS     string `json:"os"`
	Arch   string `json:"arch"`
	CPUs   int    `json:"cpus"`
	// Commit is the short git revision the suite ran at, when the
	// working tree is a git checkout; "" otherwise.
	Commit string `json:"commit,omitempty"`
	Quick  bool   `json:"quick"`
	Cases  []Case `json:"cases"`
}

// Case is one pinned benchmark's measurements: the timing triple from
// testing.Benchmark plus the join's own observability report.
type Case struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`

	Pairs     int64 `json:"pairs"`
	DistComps int64 `json:"dist_comps"`
	BuildNs   int64 `json:"build_ns"`
	ProbeNs   int64 `json:"probe_ns"`
}

// spec pins one suite entry.
type spec struct {
	name    string
	dims    int
	twoSet  bool
	workers int
	stream  bool
	f32     bool
}

// suite enumerates the pinned cases. Workers and naming are fixed here;
// sizes and ε come from sizes().
func suite() []spec {
	var out []spec
	for _, kind := range []string{"self", "join"} {
		for _, d := range []int{8, 16} {
			for _, par := range []string{"serial", "parallel"} {
				for _, mode := range []string{"collect", "stream"} {
					workers := 1
					if par == "parallel" {
						// Floor of 2 so the parallel code path runs even
						// on a single-CPU machine.
						workers = runtime.NumCPU()
						if workers < 2 {
							workers = 2
						}
					}
					out = append(out, spec{
						name:    fmt.Sprintf("%s/d%d/%s/%s", kind, d, par, mode),
						dims:    d,
						twoSet:  kind == "join",
						workers: workers,
						stream:  mode == "stream",
					})
				}
			}
		}
	}
	// High-dimensional self-join cases exercise the flat kernels where
	// memory bandwidth dominates; the f32 variant measures the float32
	// kernel mode end to end (mirror build included, amortized over runs).
	for _, d := range []int{32, 64} {
		for _, mode := range []string{"collect", "stream"} {
			out = append(out, spec{
				name:    fmt.Sprintf("self/d%d/serial/%s", d, mode),
				dims:    d,
				workers: 1,
				stream:  mode == "stream",
			})
		}
		out = append(out, spec{
			name:    fmt.Sprintf("self/d%d/serial/collect/f32", d),
			dims:    d,
			workers: 1,
			f32:     true,
		})
	}
	return out
}

// sizes returns the point counts and ε for one dimensionality. ε grows
// with √d so the selectivity — and therefore the output volume being
// measured — stays comparable across the suite.
func sizes(dims int, quick bool) (nSelf, nA, nB int, eps float64) {
	nSelf, nA, nB = 4000, 3000, 2000
	if quick {
		nSelf, nA, nB = 800, 600, 400
	}
	switch dims {
	case 16:
		eps = 0.22
	case 32:
		eps = 0.31
	case 64:
		eps = 0.44
	default:
		eps = 0.15
	}
	return
}

// run measures one spec with testing.Benchmark and returns its Case.
func run(sp spec, quick bool) (Case, error) {
	nSelf, nA, nB, eps := sizes(sp.dims, quick)
	var ds, da, db *simjoin.Dataset
	var err error
	if sp.twoSet {
		// One seed for both sides: the sets share cluster centers (two
		// samples of one distribution), so the join has real output. A
		// second seed would scatter the clusters into disjoint regions
		// and benchmark an empty join.
		if da, err = simjoin.Synthetic("clustered", nA, sp.dims, 11); err != nil {
			return Case{}, err
		}
		if db, err = simjoin.Synthetic("clustered", nB, sp.dims, 11); err != nil {
			return Case{}, err
		}
	} else {
		if ds, err = simjoin.Synthetic("clustered", nSelf, sp.dims, 10); err != nil {
			return Case{}, err
		}
	}
	var js simjoin.JoinStats
	opt := simjoin.Options{Eps: eps, Workers: sp.workers, Float32: sp.f32, Stats: &js}
	var runErr error
	one := func() {
		switch {
		case sp.twoSet && sp.stream:
			_, runErr = simjoin.JoinEach(da, db, opt, func(i, j int) {})
		case sp.twoSet:
			_, runErr = simjoin.Join(da, db, opt)
		case sp.stream:
			_, runErr = simjoin.SelfJoinEach(ds, opt, func(i, j int) {})
		default:
			_, runErr = simjoin.SelfJoin(ds, opt)
		}
	}
	one() // warm-up, and the JoinStats snapshot the report carries
	if runErr != nil {
		return Case{}, fmt.Errorf("%s: %w", sp.name, runErr)
	}
	snapshot := js
	if snapshot.PairsEmitted == 0 {
		return Case{}, fmt.Errorf("%s: degenerate benchmark, no pairs at eps %g", sp.name, eps)
	}
	// Best of three runs: scheduler and frequency noise only ever slows a
	// run down, so the minimum is the most reproducible estimate and
	// keeps the regression gate's threshold meaningful on busy machines.
	var r testing.BenchmarkResult
	best := math.Inf(1)
	for rep := 0; rep < benchRepeats; rep++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				one()
			}
		})
		if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns < best {
			best, r = ns, res
		}
	}
	if runErr != nil {
		return Case{}, fmt.Errorf("%s: %w", sp.name, runErr)
	}
	return Case{
		Name:        sp.name,
		Iterations:  r.N,
		NsPerOp:     best,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Pairs:       snapshot.PairsEmitted,
		DistComps:   snapshot.DistComps,
		BuildNs:     snapshot.BuildTime.Nanoseconds(),
		ProbeNs:     snapshot.ProbeTime.Nanoseconds(),
	}, nil
}

// runLive measures the two maintenance strategies behind the live
// matching engine, pinned at dimensionality 8 and a 64-point batch:
//
//	live/d8/append64  — Range + Insert per appended point on a standing
//	                    index (what internal/live does on every batch)
//	live/d8/rebuild64 — rebuild the index over the grown dataset, then
//	                    re-probe the batch (what polling would cost)
//
// The delta-pair discovery work is the same in both; only the index
// maintenance differs, so the ratio is the price of NOT having the
// incremental path.
func runLive(quick bool) ([]Case, error) {
	const dims, appendN = 8, 64
	n, _, _, eps := sizes(dims, quick)
	full, err := simjoin.Synthetic("clustered", n, dims, 12)
	if err != nil {
		return nil, err
	}
	base := simjoin.NewDataset(dims)
	for i := 0; i < n-appendN; i++ {
		base.Append(full.Point(i))
	}
	tail := make([][]float64, appendN)
	for i := range tail {
		tail[i] = full.Point(n - appendN + i)
	}

	var runErr error
	var pairsSeen int64
	probe := func(idx *simjoin.Index, insert bool) {
		for _, p := range tail {
			hits, err := idx.Range(p, simjoin.L2, eps)
			if err != nil {
				runErr = err
				return
			}
			pairsSeen += int64(len(hits))
			if insert {
				if _, err := idx.Insert(p); err != nil {
					runErr = err
					return
				}
			}
		}
	}
	seed := func() *simjoin.Index {
		idx, err := simjoin.NewIndex(base.CloneWithCap(appendN), eps, simjoin.Options{})
		if err != nil {
			runErr = err
		}
		return idx
	}

	benches := []struct {
		name  string
		bench func(b *testing.B)
	}{
		{"live/d8/append64", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				idx := seed()
				if runErr != nil {
					return
				}
				b.StartTimer()
				probe(idx, true)
			}
		}},
		{"live/d8/rebuild64", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				idx, err := simjoin.NewIndex(full, eps, simjoin.Options{})
				if err != nil {
					runErr = err
					return
				}
				probe(idx, false)
			}
		}},
	}
	var out []Case
	for _, bc := range benches {
		// One untimed pass for the per-op pair count the report carries.
		pairsSeen = 0
		if bc.name == "live/d8/append64" {
			probe(seed(), true)
		} else {
			idx, err := simjoin.NewIndex(full, eps, simjoin.Options{})
			if err != nil {
				return nil, err
			}
			probe(idx, false)
		}
		if runErr != nil {
			return nil, fmt.Errorf("%s: %w", bc.name, runErr)
		}
		snapshot := pairsSeen
		if snapshot == 0 {
			return nil, fmt.Errorf("%s: degenerate benchmark, no pairs at eps %g", bc.name, eps)
		}
		var r testing.BenchmarkResult
		best := math.Inf(1)
		for rep := 0; rep < benchRepeats; rep++ {
			res := testing.Benchmark(bc.bench)
			if runErr != nil {
				return nil, fmt.Errorf("%s: %w", bc.name, runErr)
			}
			if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns < best {
				best, r = ns, res
			}
		}
		out = append(out, Case{
			Name:        bc.name,
			Iterations:  r.N,
			NsPerOp:     best,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Pairs:       snapshot,
		})
	}
	return out, nil
}

// runEstimate measures the sketch-based planner, pinned at
// dimensionality 8:
//
//	estimate/sketch-update — absorb a 64-point batch into a sketch
//	                         already warmed with the full dataset (what
//	                         every append pays to keep estimates fresh)
//	estimate/choose        — PlanSelfJoin on the sketched dataset: the
//	                         planner's O(reservoir) fast path, no raw
//	                         point ever touched
func runEstimate(quick bool) ([]Case, error) {
	const dims, batch = 8, 64
	n, _, _, eps := sizes(dims, quick)
	full, err := simjoin.Synthetic("clustered", n, dims, 13)
	if err != nil {
		return nil, err
	}
	tail := make([][]float64, batch)
	for i := range tail {
		tail[i] = full.Point(n - batch + i)
	}
	sk := full.EnableSketch()
	pl := simjoin.PlanSelfJoin(full, simjoin.L2, eps)
	if !pl.Sketched || pl.EstimatedPairs <= 0 {
		return nil, fmt.Errorf("estimate/choose: degenerate benchmark, sketch predicts %d pairs at eps %g", pl.EstimatedPairs, eps)
	}
	var sink int64
	benches := []struct {
		name  string
		bench func(b *testing.B)
	}{
		{"estimate/sketch-update", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range tail {
					sk.Observe(p)
				}
			}
		}},
		{"estimate/choose", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := simjoin.PlanSelfJoin(full, simjoin.L2, eps)
				sink += p.EstimatedPairs
			}
		}},
	}
	var out []Case
	for _, bc := range benches {
		var r testing.BenchmarkResult
		best := math.Inf(1)
		for rep := 0; rep < benchRepeats; rep++ {
			res := testing.Benchmark(bc.bench)
			if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns < best {
				best, r = ns, res
			}
		}
		out = append(out, Case{
			Name:        bc.name,
			Iterations:  r.N,
			NsPerOp:     best,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			// Pairs carries the sketch's prediction for the suite's
			// workload, so reports also track estimator drift.
			Pairs: pl.EstimatedPairs,
		})
	}
	_ = sink
	return out, nil
}

// runVec measures the flat distance kernels in isolation, pinned at
// dimensionality 32 over clustered data, so a kernel-level regression
// fails the gate even when the end-to-end cases absorb it:
//
//	vec/l2-flat       — full-accumulation L2 probes (threshold ∞): raw
//	                    kernel throughput, no early exit ever taken
//	vec/l2-early-exit — the same probes at the suite's d32 ε: the
//	                    partial-distance early exit fires on nearly every
//	                    candidate
//	vec/f32           — vec/l2-flat over the float32 mirror
func runVec(quick bool) ([]Case, error) {
	const dims = 32
	n := 1200
	if quick {
		n = 600
	}
	ds, err := simjoin.Synthetic("clustered", n, dims, 14)
	if err != nil {
		return nil, err
	}
	benches := []struct {
		name string
		f    vec.Flat
		th   float64
	}{
		{"vec/l2-flat", ds.Internal().KernelView(false), math.Inf(1)},
		{"vec/l2-early-exit", ds.Internal().KernelView(false), vec.Threshold(vec.L2, 0.31)},
		{"vec/f32", ds.Internal().KernelView(true), math.Inf(1)},
	}
	var out []Case
	for _, bc := range benches {
		f, th := bc.f, bc.th
		var pairs int64
		one := func() {
			var res int64
			for i := 0; i < n; i++ {
				_, r := vec.ProbeRangeFlat(vec.L2, f, int32(i), f, 0, n, th, func(int32) {})
				res += r
			}
			pairs = res
		}
		one()
		if pairs == 0 {
			return nil, fmt.Errorf("%s: degenerate benchmark, no pairs", bc.name)
		}
		var r testing.BenchmarkResult
		best := math.Inf(1)
		for rep := 0; rep < benchRepeats; rep++ {
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					one()
				}
			})
			if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns < best {
				best, r = ns, res
			}
		}
		out = append(out, Case{
			Name:        bc.name,
			Iterations:  r.N,
			NsPerOp:     best,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Pairs:       pairs,
		})
	}
	return out, nil
}

// compare gates next against base: any case whose ns/op grew by more
// than threshold (fraction, e.g. 0.2 = +20%) is a regression. only, when
// non-empty, restricts the gate to cases with that name prefix — on BOTH
// sides, so a filtered run is not failed for the baseline cases it never
// measured. It returns the number of regressions after printing a
// per-case table.
func compare(base, next *Report, threshold float64, only string) int {
	if base.Quick != next.Quick {
		fmt.Fprintf(os.Stderr, "simjoinbench: refusing to compare quick=%v against quick=%v — rerun with matching modes\n", next.Quick, base.Quick)
		return 1
	}
	baseBy := make(map[string]Case, len(base.Cases))
	for _, c := range base.Cases {
		if strings.HasPrefix(c.Name, only) {
			baseBy[c.Name] = c
		}
	}
	regressions := 0
	for _, c := range next.Cases {
		if !strings.HasPrefix(c.Name, only) {
			continue
		}
		b, ok := baseBy[c.Name]
		if !ok {
			fmt.Printf("%-28s NEW        %12.0f ns/op\n", c.Name, c.NsPerOp)
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		verdict := "ok"
		if ratio > 1+threshold {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-28s %-10s %12.0f → %12.0f ns/op  (%+.1f%%)\n",
			c.Name, verdict, b.NsPerOp, c.NsPerOp, (ratio-1)*100)
		delete(baseBy, c.Name)
	}
	for name := range baseBy {
		fmt.Printf("%-28s MISSING — baseline case not measured\n", name)
		regressions++
	}
	return regressions
}

func readReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

func main() {
	var (
		quick     = flag.Bool("quick", false, "small inputs for CI: same suite, ~10x faster")
		out       = flag.String("out", "", "write the JSON report here (default BENCH_<date>.json; \"-\" for stdout)")
		baseline  = flag.String("baseline", "", "compare the fresh run against this report and exit 1 on regression")
		threshold = flag.Float64("threshold", 0.20, "allowed ns/op growth before a case counts as regressed")
		comp      = flag.Bool("compare", false, "compare two existing reports (old new) instead of running")
		only      = flag.String("only", "", "run (and gate) only cases whose name has this prefix, e.g. vec/")
	)
	flag.Parse()

	if *comp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "simjoinbench: -compare wants exactly two report paths (old new)")
			os.Exit(2)
		}
		old, err := readReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "simjoinbench:", err)
			os.Exit(2)
		}
		next, err := readReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "simjoinbench:", err)
			os.Exit(2)
		}
		if n := compare(old, next, *threshold, *only); n > 0 {
			fmt.Fprintf(os.Stderr, "simjoinbench: %d regression(s) beyond +%.0f%%\n", n, *threshold*100)
			os.Exit(1)
		}
		return
	}

	// wanted reports whether a case name passes the -only filter;
	// groupWanted whether a whole group (by its name prefix) can contain a
	// passing case, so filtered runs skip the work entirely.
	wanted := func(name string) bool { return strings.HasPrefix(name, *only) }
	groupWanted := func(prefix string) bool {
		return *only == "" || strings.HasPrefix(prefix, *only) || strings.HasPrefix(*only, prefix)
	}

	report := &Report{
		Schema: Schema,
		Date:   time.Now().UTC().Format(time.RFC3339),
		Go:     runtime.Version(),
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Commit: gitCommit(),
		Quick:  *quick,
	}
	add := func(c Case) {
		if !wanted(c.Name) {
			return
		}
		fmt.Printf("%-28s %12.0f ns/op  %8d allocs/op  %10d pairs\n", c.Name, c.NsPerOp, c.AllocsPerOp, c.Pairs)
		report.Cases = append(report.Cases, c)
	}
	for _, sp := range suite() {
		if !wanted(sp.name) {
			continue
		}
		c, err := run(sp, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simjoinbench:", err)
			os.Exit(2)
		}
		add(c)
	}
	groups := []struct {
		prefix string
		run    func(bool) ([]Case, error)
	}{
		{"live/", runLive},
		{"estimate/", runEstimate},
		{"vec/", runVec},
	}
	for _, g := range groups {
		if !groupWanted(g.prefix) {
			continue
		}
		cases, err := g.run(*quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simjoinbench:", err)
			os.Exit(2)
		}
		for _, c := range cases {
			add(c)
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	raw, _ := json.MarshalIndent(report, "", "  ")
	raw = append(raw, '\n')
	if path == "-" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(path, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "simjoinbench:", err)
		os.Exit(2)
	} else {
		fmt.Println("wrote", path)
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simjoinbench:", err)
			os.Exit(2)
		}
		if n := compare(base, report, *threshold, *only); n > 0 {
			fmt.Fprintf(os.Stderr, "simjoinbench: %d regression(s) beyond +%.0f%%\n", n, *threshold*100)
			os.Exit(1)
		}
	}
}
