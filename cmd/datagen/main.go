// Command datagen writes synthetic point datasets in the library's CSV or
// binary format, for feeding the simjoin CLI or external tools.
//
//	datagen -kind clustered -n 100000 -dims 8 -seed 7 -out points.csv
//
// Kinds: uniform, clustered, correlated, zipf.
package main

import (
	"flag"
	"fmt"
	"os"

	"simjoin"
)

func main() {
	var (
		kind = flag.String("kind", "uniform", "distribution: uniform, clustered, correlated, zipf")
		n    = flag.Int("n", 10000, "number of points")
		dims = flag.Int("dims", 8, "dimensionality")
		seed = flag.Int64("seed", 1, "generator seed (same seed ⇒ same data)")
		out  = flag.String("out", "", "output path (.csv for CSV, anything else binary); required")
	)
	flag.Parse()
	if err := run(*kind, *n, *dims, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(kind string, n, dims int, seed int64, out string) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	ds, err := simjoin.Synthetic(kind, n, dims, seed)
	if err != nil {
		return err
	}
	if err := ds.Save(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d %d-dim %s points to %s\n", n, dims, kind, out)
	return nil
}
