package main

import (
	"path/filepath"
	"testing"

	"simjoin"
)

func TestRunWritesLoadableFile(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"pts.csv", "pts.bin"} {
		path := filepath.Join(dir, name)
		if err := run("clustered", 123, 5, 9, path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ds, err := simjoin.Load(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Len() != 123 || ds.Dims() != 5 {
			t.Errorf("%s: shape %dx%d", name, ds.Len(), ds.Dims())
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("uniform", 10, 2, 1, ""); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run("nope", 10, 2, 1, filepath.Join(t.TempDir(), "x.csv")); err == nil {
		t.Error("bad kind accepted")
	}
	if err := run("uniform", 10, 2, 1, "/nonexistent-dir/x.csv"); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.bin")
	b := filepath.Join(dir, "b.bin")
	if err := run("zipf", 50, 3, 42, a); err != nil {
		t.Fatal(err)
	}
	if err := run("zipf", 50, 3, 42, b); err != nil {
		t.Fatal(err)
	}
	da, _ := simjoin.Load(a)
	db, _ := simjoin.Load(b)
	for i := 0; i < da.Len(); i++ {
		for k := 0; k < da.Dims(); k++ {
			if da.Point(i)[k] != db.Point(i)[k] {
				t.Fatal("same seed produced different files")
			}
		}
	}
}
