package simjoin

import (
	"fmt"

	"simjoin/internal/dft"
	"simjoin/internal/join"
	"simjoin/internal/kdtree"
	"simjoin/internal/rtree"
	"simjoin/internal/synth"
)

// Synthetic generates one of the library's synthetic workloads —
// "uniform", "clustered", "correlated" or "zipf" — with n points of the
// given dimensionality, deterministically for a seed. These are the same
// generators the benchmark harness sweeps.
func Synthetic(kind string, n, dims int, seed int64) (*Dataset, error) {
	dist, err := synth.ParseDistribution(kind)
	if err != nil {
		return nil, err
	}
	if n <= 0 || dims <= 0 {
		return nil, fmt.Errorf("simjoin: invalid synthetic shape %dx%d", n, dims)
	}
	return &Dataset{ds: synth.Generate(synth.Config{N: n, Dims: dims, Seed: seed, Dist: dist})}, nil
}

// SyntheticKinds lists the accepted Synthetic kind names.
func SyntheticKinds() []string {
	out := make([]string, 0, 4)
	for _, d := range synth.AllDistributions() {
		out = append(out, d.String())
	}
	return out
}

// RandomWalks generates n random-walk time sequences of the given length —
// the stand-in for the stock/utilization traces of the time-series
// application.
func RandomWalks(n, length int, seed int64) [][]float64 {
	return synth.RandomWalks(n, length, 1, seed)
}

// TimeSeriesFeatures maps equal-length sequences to their first k DFT
// coefficients (2k real dimensions each). Euclidean distance between
// feature vectors never exceeds the distance between the raw sequences, so
// an ε-join in feature space yields a candidate set with no false
// dismissals; refine candidates with SeqDist.
func TimeSeriesFeatures(series [][]float64, k int) *Dataset {
	return &Dataset{ds: dft.FeatureDataset(series, k)}
}

// SeqDist returns the Euclidean distance between two equal-length
// sequences — the refinement test of the DFT filter-and-refine pipeline.
func SeqDist(a, b []float64) float64 { return dft.SeqDist(a, b) }

// SlidingFeatures maps every length-window subsequence of series (stride
// 1) to its first k DFT coefficients using the O(k)-per-step sliding-DFT
// recurrence — the subsequence-matching counterpart of
// TimeSeriesFeatures. Each row lower-bounds its window's distances just
// like whole-sequence features.
func SlidingFeatures(series []float64, window, k int) [][]float64 {
	return dft.SlidingFeatures(series, window, k)
}

// SubsequenceMatches returns the start offsets of every length-len(query)
// window of series within eps (Euclidean) of query, using the sliding-DFT
// filter with k coefficients plus exact refinement — no false dismissals.
func SubsequenceMatches(series, query []float64, k int, eps float64) []int {
	return dft.SubsequenceMatches(series, query, k, eps)
}

// NeighborIndex answers repeated ε-range queries over one dataset (backed
// by a k-d tree). Use it when the workload is point-at-a-time lookups
// rather than a full join.
type NeighborIndex struct {
	t *kdtree.Tree
}

// NewNeighborIndex builds a range-query index over ds. It panics on an
// empty dataset.
func NewNeighborIndex(ds *Dataset) *NeighborIndex {
	return &NeighborIndex{t: kdtree.Build(ds.internal(), 0)}
}

// Range returns the indexes of every point within eps of q under the given
// metric.
func (x *NeighborIndex) Range(q []float64, metric Metric, eps float64) []int {
	var out []int
	x.t.Range(q, metric.internal(), eps, nil, func(i int) { out = append(out, i) })
	return out
}

// Neighbor is one k-nearest-neighbor result: a point index and its
// distance from the query.
type Neighbor struct {
	Index int
	Dist  float64
}

// KNN returns the k nearest points to q in ascending distance order (ties
// broken by index).
func (x *NeighborIndex) KNN(q []float64, k int, metric Metric) []Neighbor {
	return toPublicNeighbors(x.t.KNN(q, k, metric.internal(), nil))
}

func toPublicNeighbors(in []join.Neighbor) []Neighbor {
	out := make([]Neighbor, len(in))
	for i, n := range in {
		out[i] = Neighbor{Index: n.Index, Dist: n.Dist}
	}
	return out
}

// KNNJoin returns, for every point of a, its k nearest neighbors in b
// (ascending distance), parallelized across workers goroutines (≤ 0 uses
// one per CPU). It returns an error on shape mismatches instead of
// panicking, matching the other public entry points.
func KNNJoin(a, b *Dataset, k, workers int, metric Metric) ([][]Neighbor, error) {
	if a.Dims() != b.Dims() {
		return nil, fmt.Errorf("simjoin: KNN join over %d-dim and %d-dim sets", a.Dims(), b.Dims())
	}
	if b.Len() == 0 {
		return nil, fmt.Errorf("simjoin: KNN join against an empty set")
	}
	if k < 1 {
		return nil, fmt.Errorf("simjoin: KNN join with k=%d", k)
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	raw := rtree.KNNJoin(a.internal(), b.internal(), k, workers, metric.internal(), nil)
	out := make([][]Neighbor, len(raw))
	for i, row := range raw {
		out[i] = toPublicNeighbors(row)
	}
	return out, nil
}
