package simjoin_test

import (
	"fmt"

	"simjoin"
)

// ExampleSelfJoin finds all pairs of points within ε of each other.
func ExampleSelfJoin() {
	ds := simjoin.FromPoints([][]float64{
		{0.0, 0.0},
		{0.1, 0.0},
		{0.9, 0.9},
		{0.9, 0.95},
	})
	res, err := simjoin.SelfJoin(ds, simjoin.Options{Eps: 0.2})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Pairs {
		fmt.Printf("points %d and %d are within 0.2\n", p.I, p.J)
	}
	// Output:
	// points 0 and 1 are within 0.2
	// points 2 and 3 are within 0.2
}

// ExampleJoin matches points across two different sets.
func ExampleJoin() {
	queries := simjoin.FromPoints([][]float64{{0.5, 0.5}})
	catalog := simjoin.FromPoints([][]float64{
		{0.52, 0.5},
		{0.1, 0.1},
		{0.5, 0.48},
	})
	res, err := simjoin.Join(queries, catalog, simjoin.Options{
		Eps:       0.05,
		Algorithm: simjoin.AlgorithmGrid,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Pairs {
		fmt.Printf("query %d matches catalog item %d\n", p.I, p.J)
	}
	// Output:
	// query 0 matches catalog item 0
	// query 0 matches catalog item 2
}

// ExampleNeighborIndex_KNN answers an interactive nearest-neighbor lookup.
func ExampleNeighborIndex_KNN() {
	ds := simjoin.FromPoints([][]float64{
		{0, 0}, {1, 0}, {0, 2}, {5, 5},
	})
	idx := simjoin.NewNeighborIndex(ds)
	for _, n := range idx.KNN([]float64{0.2, 0}, 2, simjoin.L2) {
		fmt.Printf("index %d at distance %.1f\n", n.Index, n.Dist)
	}
	// Output:
	// index 0 at distance 0.2
	// index 1 at distance 0.8
}

// ExampleTimeSeriesFeatures runs the DFT filter-and-refine pipeline on two
// sequences.
func ExampleTimeSeriesFeatures() {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{1, 2, 3, 4, 5, 6, 7, 9} // near-duplicate of a
	feats := simjoin.TimeSeriesFeatures([][]float64{a, b}, 2)
	res, err := simjoin.SelfJoin(feats, simjoin.Options{Eps: 1.5})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Pairs {
		// Refine the feature-space candidate in the time domain.
		if simjoin.SeqDist(a, b) <= 1.5 {
			fmt.Printf("sequences %d and %d are similar\n", p.I, p.J)
		}
	}
	// Output:
	// sequences 0 and 1 are similar
}
