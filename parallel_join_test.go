package simjoin

import (
	"math"
	"runtime"
	"strings"
	"testing"
)

// bruteJoinOracle runs a serial brute-force join as the oracle for the
// parallel paths, returning its (already sorted) pair set.
func bruteJoinOracle(t *testing.T, a, b *Dataset, opt Options) []Pair {
	t.Helper()
	opt.Algorithm = AlgorithmBrute
	opt.Workers = 1
	res, err := Join(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res.Pairs
}

func samePairs(t *testing.T, label string, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestJoinParallelOracle is the tentpole's acceptance oracle: for every
// algorithm with a parallel two-set engine, Join with Workers>1 must
// return exactly the serial brute-force pair set — across all three
// metrics and with unequal set sizes. CI runs this under -race.
func TestJoinParallelOracle(t *testing.T) {
	a, err := Synthetic("clustered", 700, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic("uniform", 300, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Metric{L2, L1, Linf} {
		want := bruteJoinOracle(t, a, b, Options{Eps: 0.2, Metric: m})
		if len(want) == 0 {
			t.Fatalf("%v: degenerate oracle, no pairs", m)
		}
		for _, algo := range []Algorithm{AlgorithmEKDB, AlgorithmGrid, AlgorithmKDTree} {
			res, err := Join(a, b, Options{Eps: 0.2, Metric: m, Algorithm: algo, Workers: 4})
			if err != nil {
				t.Fatalf("%v/%s: %v", m, algo, err)
			}
			samePairs(t, m.String()+"/"+string(algo), res.Pairs, want)
			if res.Stats.Results != int64(len(want)) {
				t.Fatalf("%v/%s: Stats.Pairs = %d, want %d", m, algo, res.Stats.Results, len(want))
			}
		}
	}
}

// TestJoinParallelCountOnly checks the shared-counter path (CollectPairs
// disabled) agrees with the collecting path under Workers>1.
func TestJoinParallelCountOnly(t *testing.T) {
	a, _ := Synthetic("clustered", 500, 4, 21)
	b, _ := Synthetic("uniform", 250, 4, 22)
	no := false
	for _, algo := range []Algorithm{AlgorithmEKDB, AlgorithmGrid, AlgorithmKDTree} {
		full, err := Join(a, b, Options{Eps: 0.15, Algorithm: algo, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		counted, err := Join(a, b, Options{Eps: 0.15, Algorithm: algo, Workers: 4, CollectPairs: &no})
		if err != nil {
			t.Fatal(err)
		}
		if counted.Stats.Results != int64(len(full.Pairs)) {
			t.Fatalf("%s: counted %d, collected %d", algo, counted.Stats.Results, len(full.Pairs))
		}
		if counted.Pairs != nil {
			t.Fatalf("%s: count-only run allocated %d pairs", algo, len(counted.Pairs))
		}
	}
}

// TestJoinDimsMismatch locks in the satellite fix: joining sets of
// different dimensionality must fail up front for every algorithm, not
// panic or silently misbehave.
func TestJoinDimsMismatch(t *testing.T) {
	a := FromPoints([][]float64{{0, 0, 0}, {1, 1, 1}})
	b := FromPoints([][]float64{{0, 0}, {1, 1}})
	for _, algo := range Algorithms() {
		_, err := Join(a, b, Options{Eps: 0.1, Algorithm: algo})
		if err == nil {
			t.Fatalf("%s: no error joining 3-dim with 2-dim", algo)
		}
		if !strings.Contains(err.Error(), "3-dim") || !strings.Contains(err.Error(), "2-dim") {
			t.Fatalf("%s: unhelpful error %q", algo, err)
		}
	}
	if _, err := JoinEach(a, b, Options{Eps: 0.1}, func(i, j int) {}); err == nil {
		t.Fatal("JoinEach: no error joining 3-dim with 2-dim")
	}
}

// TestOptionsRejectNonFiniteEps locks in the satellite fix: +Inf (which
// passes an Eps > 0 check) and NaN must both be rejected.
func TestOptionsRejectNonFiniteEps(t *testing.T) {
	ds := unitSquareCluster()
	for _, eps := range []float64{math.Inf(1), math.Inf(-1), math.NaN(), 0, -1} {
		if _, err := SelfJoin(ds, Options{Eps: eps}); err == nil {
			t.Errorf("SelfJoin accepted Eps = %g", eps)
		}
		if _, err := Join(ds, ds, Options{Eps: eps}); err == nil {
			t.Errorf("Join accepted Eps = %g", eps)
		}
		if _, err := SelfJoinEach(ds, Options{Eps: eps}, func(i, j int) {}); err == nil {
			t.Errorf("SelfJoinEach accepted Eps = %g", eps)
		}
	}
}

// TestSelfJoinEachMatchesCollect: the streaming API must deliver exactly
// the collected pair set, serially and through the parallel funnel, with
// the callback never invoked concurrently (detected by -race plus a
// plain counter).
func TestSelfJoinEachMatchesCollect(t *testing.T) {
	ds, err := Synthetic("clustered", 600, 6, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgorithmEKDB, AlgorithmGrid, AlgorithmKDTree, AlgorithmBrute} {
		res, err := SelfJoin(ds, Options{Eps: 0.1, Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		want := map[Pair]bool{}
		for _, p := range res.Pairs {
			want[p] = true
		}
		for _, workers := range []int{1, 4} {
			seen := map[Pair]bool{}
			var n int64 // plain int64: a data race here fails under -race
			st, err := SelfJoinEach(ds, Options{Eps: 0.1, Algorithm: algo, Workers: workers}, func(i, j int) {
				n++
				if i >= j {
					t.Errorf("non-canonical pair (%d,%d)", i, j)
				}
				p := Pair{I: i, J: j}
				if seen[p] {
					t.Errorf("duplicate pair %v", p)
				}
				seen[p] = true
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", algo, workers, err)
			}
			if len(seen) != len(want) || n != int64(len(want)) {
				t.Fatalf("%s workers=%d: streamed %d pairs, want %d", algo, workers, len(seen), len(want))
			}
			for p := range want {
				if !seen[p] {
					t.Fatalf("%s workers=%d: missing pair %v", algo, workers, p)
				}
			}
			if st.Results != int64(len(want)) {
				t.Fatalf("%s workers=%d: Stats.Pairs = %d, want %d", algo, workers, st.Results, len(want))
			}
		}
	}
}

// TestJoinEachMatchesJoin mirrors the self-join streaming test for the
// two-set API. The counting callback is also the flat-memory acceptance
// check: no Result is built and no pair slice is allocated by the API.
func TestJoinEachMatchesJoin(t *testing.T) {
	a, _ := Synthetic("clustered", 500, 5, 41)
	b, _ := Synthetic("uniform", 350, 5, 42)
	for _, algo := range []Algorithm{AlgorithmEKDB, AlgorithmGrid, AlgorithmKDTree, AlgorithmBrute} {
		res, err := Join(a, b, Options{Eps: 0.15, Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		want := map[Pair]bool{}
		for _, p := range res.Pairs {
			want[p] = true
		}
		for _, workers := range []int{1, 4} {
			seen := map[Pair]bool{}
			st, err := JoinEach(a, b, Options{Eps: 0.15, Algorithm: algo, Workers: workers}, func(i, j int) {
				seen[Pair{I: i, J: j}] = true
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", algo, workers, err)
			}
			if len(seen) != len(want) {
				t.Fatalf("%s workers=%d: streamed %d pairs, want %d", algo, workers, len(seen), len(want))
			}
			for p := range want {
				if !seen[p] {
					t.Fatalf("%s workers=%d: missing pair %v", algo, workers, p)
				}
			}
			if st.Results != int64(len(want)) {
				t.Fatalf("%s workers=%d: Stats.Pairs = %d", algo, workers, st.Results)
			}
		}
	}
}

// TestJoinEachCountingCallbackFlatMemory is the acceptance criterion's
// memory test in its sharpest observable form: a counting callback over a
// workload whose pair set would be large, asserting the count matches a
// count-only Join — the streaming path exists precisely so this never
// materializes a pair slice.
func TestJoinEachCountingCallbackFlatMemory(t *testing.T) {
	a, _ := Synthetic("uniform", 3000, 3, 51)
	b, _ := Synthetic("uniform", 3000, 3, 52)
	no := false
	want, err := Join(a, b, Options{Eps: 0.3, CollectPairs: &no, Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.Results < 10000 {
		t.Fatalf("degenerate workload: only %d pairs", want.Stats.Results)
	}
	var n int64
	st, err := JoinEach(a, b, Options{Eps: 0.3, Workers: runtime.GOMAXPROCS(0)}, func(i, j int) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != want.Stats.Results || st.Results != n {
		t.Fatalf("streamed %d pairs (stats %d), want %d", n, st.Results, want.Stats.Results)
	}
}

// TestJoinParallelLargeMatchesSerial is the benchmark's correctness twin:
// on a larger two-set workload the parallel join must produce the exact
// sorted pair set of the serial one. (BenchmarkT3TwoSetJoin times the
// same configuration.)
func TestJoinParallelLargeMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("large workload")
	}
	// Two independently seeded clustered sets share no cluster centers and
	// barely intersect; interleaving one generation into two halves gives a
	// cross join with a rich pair set instead.
	full, err := Synthetic("clustered", 40000, 8, 61)
	if err != nil {
		t.Fatal(err)
	}
	var pa, pb [][]float64
	for i := 0; i < full.Len(); i++ {
		if i%2 == 0 {
			pa = append(pa, full.Point(i))
		} else {
			pb = append(pb, full.Point(i))
		}
	}
	a, b := FromPoints(pa), FromPoints(pb)
	serial, err := Join(a, b, Options{Eps: 0.05, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Join(a, b, Options{Eps: 0.05, Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Pairs) == 0 {
		t.Fatal("degenerate workload: no pairs")
	}
	samePairs(t, "parallel vs serial", parallel.Pairs, serial.Pairs)
}

// TestIndexSelfJoinEach exercises the Index streaming entry point.
func TestIndexSelfJoinEach(t *testing.T) {
	ds, _ := Synthetic("clustered", 400, 4, 71)
	x, err := NewIndex(ds, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.SelfJoin(Options{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var n int64
		_, err := x.SelfJoinEach(Options{Eps: 0.1, Workers: workers}, func(i, j int) { n++ })
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(res.Pairs)) {
			t.Fatalf("workers=%d: streamed %d pairs, want %d", workers, n, len(res.Pairs))
		}
	}
}
