package simjoin

import (
	"math"
	"sort"
	"testing"
)

func TestNeighborIndexKNN(t *testing.T) {
	ds, _ := Synthetic("uniform", 500, 4, 9)
	idx := NewNeighborIndex(ds)
	q := []float64{0.5, 0.5, 0.5, 0.5}
	got := idx.KNN(q, 7, L2)
	if len(got) != 7 {
		t.Fatalf("KNN returned %d neighbors", len(got))
	}
	// Oracle: sort all distances.
	dists := make([]float64, ds.Len())
	for i := range dists {
		var s float64
		for k, v := range ds.Point(i) {
			d := v - q[k]
			s += d * d
		}
		dists[i] = math.Sqrt(s)
	}
	sort.Float64s(dists)
	for i, n := range got {
		if math.Abs(n.Dist-dists[i]) > 1e-12 {
			t.Errorf("neighbor %d dist %g, want %g", i, n.Dist, dists[i])
		}
		if i > 0 && n.Dist < got[i-1].Dist {
			t.Error("KNN output not distance-ordered")
		}
	}
}

func TestKNNJoinPublic(t *testing.T) {
	a, _ := Synthetic("uniform", 60, 3, 10)
	b, _ := Synthetic("clustered", 300, 3, 11)
	rows, err := KNNJoin(a, b, 4, 2, L1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != a.Len() {
		t.Fatalf("%d rows, want %d", len(rows), a.Len())
	}
	for i, row := range rows {
		if len(row) != 4 {
			t.Fatalf("row %d: %d neighbors", i, len(row))
		}
		// Verify the first neighbor against a scan.
		best, bestD := -1, math.Inf(1)
		for j := 0; j < b.Len(); j++ {
			var s float64
			for k, v := range b.Point(j) {
				s += math.Abs(v - a.Point(i)[k])
			}
			if s < bestD {
				best, bestD = j, s
			}
		}
		if math.Abs(row[0].Dist-bestD) > 1e-12 {
			t.Fatalf("row %d: nearest dist %g, want %g (index %d)", i, row[0].Dist, bestD, best)
		}
	}
}

func TestKNNJoinErrors(t *testing.T) {
	a, _ := Synthetic("uniform", 5, 2, 1)
	b3, _ := Synthetic("uniform", 5, 3, 1)
	if _, err := KNNJoin(a, b3, 1, 1, L2); err == nil {
		t.Error("dims mismatch accepted")
	}
	if _, err := KNNJoin(a, NewDataset(2), 1, 1, L2); err == nil {
		t.Error("empty b accepted")
	}
	if _, err := KNNJoin(a, a, 0, 1, L2); err == nil {
		t.Error("k=0 accepted")
	}
}
