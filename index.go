package simjoin

import (
	"fmt"

	"simjoin/internal/core"
	"simjoin/internal/obsv"
	"simjoin/internal/pairs"
	"simjoin/internal/stats"
)

// Index is a reusable ε-kdB tree over one dataset: build once at the
// largest threshold of interest, then run any number of self-joins and
// range queries at that ε or below, and keep the index current with
// Insert/Delete as the dataset evolves. The paper's core structure,
// exposed for callers whose workload is not a single one-shot join.
type Index struct {
	ds  *Dataset
	eps float64
	t   *core.Tree
}

// NewIndex builds an index over ds for thresholds up to eps. LeafThreshold
// and BiasedSplit from opt tune the build; other options are ignored here
// and supplied per query instead.
func NewIndex(ds *Dataset, eps float64, opt Options) (*Index, error) {
	if !(eps > 0) {
		return nil, fmt.Errorf("simjoin: index eps must be positive, got %g", eps)
	}
	cfg := core.Config{LeafThreshold: opt.LeafThreshold, BiasedSplit: opt.BiasedSplit}
	return &Index{ds: ds, eps: eps, t: core.Build(ds.internal(), eps, cfg)}, nil
}

// Eps returns the largest threshold the index supports.
func (x *Index) Eps() float64 { return x.eps }

// Len returns the number of points in the underlying dataset.
func (x *Index) Len() int { return x.ds.Len() }

// SelfJoin reports every unordered pair within opt.Eps (which must not
// exceed the index's ε) exactly once with I < J. opt.Workers > 1 runs the
// stripe-parallel variant.
func (x *Index) SelfJoin(opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Eps > x.eps {
		return nil, fmt.Errorf("simjoin: query eps %g exceeds index eps %g; rebuild with a larger threshold", opt.Eps, x.eps)
	}
	var counters stats.Counters
	var phases obsv.Phases
	iopt := opt.toInternal(&counters, &phases)
	watch := stats.Start()
	var collected []pairs.Pair
	if opt.Workers > 1 {
		sh := pairs.NewSharded(true)
		x.t.SelfJoinParallel(iopt, sh.Handle)
		collected = sh.Merged()
	} else {
		col := &pairs.Collector{Canonical: true}
		x.t.SelfJoin(iopt, col)
		collected = col.Sorted()
	}
	elapsed := watch.Elapsed()
	snap := counters.Snapshot()
	opt.fillStats(planned{algo: AlgorithmEKDB, est: -1}, snap, &phases, int64(len(collected)), elapsed)
	return buildResult(collected, snap, elapsed, opt), nil
}

// SelfJoinEach streams every qualifying unordered pair (delivered with
// i < j) to fn as it is found, without materializing a pair slice — the
// streaming counterpart of SelfJoin, with the same callback contract as
// the package-level SelfJoinEach: single-goroutine delivery in
// unspecified order. opt.Workers > 1 runs the stripe-parallel variant
// through a serializing funnel.
func (x *Index) SelfJoinEach(opt Options, fn func(i, j int)) (Stats, error) {
	if err := opt.validate(); err != nil {
		return Stats{}, err
	}
	if opt.Eps > x.eps {
		return Stats{}, fmt.Errorf("simjoin: query eps %g exceeds index eps %g; rebuild with a larger threshold", opt.Eps, x.eps)
	}
	var counters stats.Counters
	var phases obsv.Phases
	iopt := opt.toInternal(&counters, &phases)
	watch := stats.Start()
	var n int64
	deliver := func(i, j int) {
		if j < i {
			i, j = j, i
		}
		n++
		fn(i, j)
	}
	if opt.Workers > 1 {
		f := pairs.NewFunnel(deliver)
		x.t.SelfJoinParallel(iopt, f.Handle)
		f.Close()
	} else {
		x.t.SelfJoin(iopt, pairs.Func(deliver))
	}
	elapsed := watch.Elapsed()
	snap := counters.Snapshot()
	opt.fillStats(planned{algo: AlgorithmEKDB, est: -1}, snap, &phases, n, elapsed)
	return eachStats(n, snap, elapsed), nil
}

// Range returns the indexes of every point within radius (≤ the index's ε)
// of q under the given metric.
func (x *Index) Range(q []float64, metric Metric, radius float64) ([]int, error) {
	if len(q) != x.ds.Dims() {
		return nil, fmt.Errorf("simjoin: query of dimension %d against %d-dim index", len(q), x.ds.Dims())
	}
	if !(radius > 0) || radius > x.eps {
		return nil, fmt.Errorf("simjoin: query radius %g outside (0, %g]", radius, x.eps)
	}
	var out []int
	x.t.RangeQuery(q, metric.internal(), radius, nil, func(i int) { out = append(out, i) })
	return out, nil
}

// Insert appends point p to the dataset and indexes it, returning its
// index.
func (x *Index) Insert(p []float64) (int, error) {
	if len(p) != x.ds.Dims() {
		return 0, fmt.Errorf("simjoin: inserting %d-dim point into %d-dim index", len(p), x.ds.Dims())
	}
	x.ds.Append(p)
	i := x.ds.Len() - 1
	x.t.Insert(i)
	return i, nil
}

// Delete removes point i from the index (its slot in the dataset remains,
// so other indexes stay stable). It reports whether the point was indexed.
func (x *Index) Delete(i int) bool { return x.t.Delete(i) }
