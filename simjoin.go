package simjoin

import (
	"fmt"
	"math"
	"time"

	"simjoin/internal/vec"
)

// Metric selects the distance function of a join.
type Metric int

const (
	// L2 is the Euclidean metric (the default).
	L2 Metric = iota
	// L1 is the Manhattan metric.
	L1
	// Linf is the maximum (Chebyshev) metric.
	Linf
)

// String returns the metric's conventional name.
func (m Metric) String() string { return m.internal().String() }

// ParseMetric converts "L2", "L1" or "Linf" (case-insensitive variants
// accepted) to a Metric.
func ParseMetric(s string) (Metric, error) {
	im, err := vec.ParseMetric(s)
	if err != nil {
		return L2, err
	}
	switch im {
	case vec.L1:
		return L1, nil
	case vec.Linf:
		return Linf, nil
	default:
		return L2, nil
	}
}

func (m Metric) internal() vec.Metric {
	switch m {
	case L1:
		return vec.L1
	case Linf:
		return vec.Linf
	default:
		return vec.L2
	}
}

// Algorithm names one of the library's join algorithms.
type Algorithm string

const (
	// AlgorithmEKDB is the ε-kdB tree join — the library's primary
	// algorithm and the right default for high-dimensional selective joins.
	AlgorithmEKDB Algorithm = "ekdb"
	// AlgorithmBrute is the O(N²) nested loop; fastest for very small
	// inputs.
	AlgorithmBrute Algorithm = "brute"
	// AlgorithmSweep sorts on dimension 0 and sweeps an ε strip.
	AlgorithmSweep Algorithm = "sweep"
	// AlgorithmGrid hashes points into ε-cells and joins adjacent cells.
	AlgorithmGrid Algorithm = "grid"
	// AlgorithmKDTree answers one ε-range query per point over a k-d tree.
	AlgorithmKDTree Algorithm = "kdtree"
	// AlgorithmRTree joins two bulk-loaded R-trees by synchronized
	// traversal.
	AlgorithmRTree Algorithm = "rtree"
	// AlgorithmRPlus joins two point R+-trees (disjoint sibling regions) by
	// synchronized traversal — the original evaluation's strongest
	// disk-era baseline.
	AlgorithmRPlus Algorithm = "rplus"
	// AlgorithmZOrder sorts along a Z-order curve and joins MBR-pruned
	// blocks.
	AlgorithmZOrder Algorithm = "zorder"
	// AlgorithmHilbert is AlgorithmZOrder with a Hilbert curve — better
	// worst-case locality for the same block machinery.
	AlgorithmHilbert Algorithm = "hilbert"
	// AlgorithmAuto estimates the workload's selectivity from a sample and
	// picks brute, sweep, grid or ekdb accordingly (see internal/estimate
	// for the calibrated rules).
	AlgorithmAuto Algorithm = "auto"
)

// Algorithms lists every available algorithm in evaluation order.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgorithmBrute, AlgorithmSweep, AlgorithmGrid, AlgorithmKDTree,
		AlgorithmRTree, AlgorithmRPlus, AlgorithmZOrder, AlgorithmHilbert,
		AlgorithmEKDB,
	}
}

// Options configures a join. Eps is required; everything else has a useful
// zero value.
type Options struct {
	// Eps is the similarity threshold: pairs with dist ≤ Eps are reported.
	Eps float64
	// Metric selects the distance function (default L2).
	Metric Metric
	// Algorithm selects the join algorithm (default AlgorithmEKDB).
	Algorithm Algorithm
	// Workers enables the parallel variant when the algorithm has one
	// (ekdb, grid) and is > 1; 0 or 1 runs serially.
	Workers int
	// LeafThreshold tunes the ε-kdB tree's leaf capacity (0 = default).
	LeafThreshold int
	// BiasedSplit makes the ε-kdB tree consume wide dimensions first.
	BiasedSplit bool
	// Float32 opts into the float32 kernel mode for memory-bandwidth-bound
	// high-dimensional workloads: the ekdb, brute, sweep and grid engines
	// run their distance tests over a float32 mirror of the coordinates,
	// halving memory traffic per candidate. Precision contract: coordinates
	// are rounded to float32 once at the dataset boundary and distances
	// accumulate in float32, so only pairs whose true distance lies within
	// a few float32 ULP of Eps can be decided differently from the exact
	// float64 kernels — everything clearly inside or outside ε is
	// unaffected. Engines without float32 kernels (kdtree, rtree, rplus,
	// zorder, hilbert) ignore the flag and stay exact. See docs/KERNELS.md.
	Float32 bool
	// CollectPairs controls whether Result.Pairs is populated (default
	// true). Disable for counting-only runs over huge outputs.
	CollectPairs *bool
	// Stats, if non-nil, is overwritten with the run's observability
	// report: work counters charged atomically by the engines (distance
	// evaluations, candidates, index-node visits, pairs emitted) and the
	// per-phase wall-time split (index build vs. candidate probing). It
	// works on every path — collecting, counting-only and streaming — and
	// costs a handful of atomic adds per run.
	Stats *JoinStats
	// Trace, if non-nil, is the parent span under which the run records
	// its trace: one child span per entry point, annotated with the
	// resolved algorithm and the run's work counters, plus "build" and
	// "probe" child spans derived from the engines' phase timers. nil
	// (the default) disables tracing at the cost of one pointer check.
	// See NewTracer.
	Trace *Span
}

func (o Options) collect() bool { return o.CollectPairs == nil || *o.CollectPairs }

func (o Options) validate() error {
	// !(Eps > 0) also rejects NaN; the explicit IsInf rejects +Inf, which
	// would otherwise poison grid cell widths and ε-kdB stripe arithmetic.
	if !(o.Eps > 0) || math.IsInf(o.Eps, 0) {
		return fmt.Errorf("simjoin: Eps must be positive and finite, got %g", o.Eps)
	}
	if o.Metric != L2 && o.Metric != L1 && o.Metric != Linf {
		return fmt.Errorf("simjoin: unknown metric %d", int(o.Metric))
	}
	if o.Algorithm != "" {
		if _, ok := registry[o.Algorithm]; !ok {
			return fmt.Errorf("simjoin: unknown algorithm %q", o.Algorithm)
		}
	}
	return nil
}

// JoinStats is the observability report of one join run, filled in
// through Options.Stats. It decomposes where the time and the work went:
// BuildTime covers organizing the data (sort, hash grid, tree
// construction), ProbeTime covers enumerating and testing candidate
// pairs — the cost split the performance evaluation attributes across
// algorithms, dimensionality and ε.
type JoinStats struct {
	// Algorithm is the concrete algorithm that ran (Auto and the empty
	// default are resolved).
	Algorithm Algorithm
	// DistComps is the number of (possibly early-exited) distance
	// evaluations the engines charged.
	DistComps int64
	// Candidates is the number of point pairs that reached the distance
	// test after all filtering.
	Candidates int64
	// NodeVisits counts index-node visits for tree/block algorithms.
	NodeVisits int64
	// PairsEmitted is the number of result pairs the run produced
	// (before any response-level truncation).
	PairsEmitted int64
	// EstimatedPairs is the planner's pre-run result-size prediction, or
	// -1 when the run decided without one (an explicit algorithm was
	// requested, or Auto short-circuited on a trivial input). Compare
	// against PairsEmitted to judge the estimator — simjoind exports the
	// ratio as a histogram.
	EstimatedPairs int64
	// BuildTime is the wall time spent constructing the join's data
	// organization. Zero for brute force, which has none.
	BuildTime time.Duration
	// ProbeTime is the wall time spent enumerating and testing
	// candidates against the built organization.
	ProbeTime time.Duration
	// Elapsed is the wall-clock time of the whole join.
	Elapsed time.Duration
}

// Pair is one join result: point i of the first (or only) set matches
// point j of the second.
type Pair struct {
	I, J int
}

// Stats reports the work a join performed.
type Stats struct {
	// Candidates is the number of point pairs that reached the distance
	// test after all filtering.
	Candidates int64
	// DistComps is the number of (possibly early-exited) distance
	// evaluations.
	DistComps int64
	// Results is the number of pairs reported.
	Results int64
	// NodeVisits counts index-node visits for tree/block algorithms.
	NodeVisits int64
	// Elapsed is the wall-clock time of the whole join, build included.
	Elapsed time.Duration
}

// Result is the outcome of a join.
type Result struct {
	// Pairs holds the matching pairs (self-joins: each unordered pair once
	// with I < J). Empty when Options.CollectPairs is disabled.
	Pairs []Pair
	// Stats reports the work performed.
	Stats Stats
}
